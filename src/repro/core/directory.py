"""Proxy-side lookup directory for the P2P client cache (paper §4.2).

"The local proxy needs to maintain a directory of cached objects in its
P2P client cache for lookup."  The paper proposes two representations:

* **Exact-Directory** — "a hashtable composed of the objectIds of all the
  cached objects in a P2P client cache"; precise, memory ∝ 16 bytes per
  entry (a 128-bit objectId), no false positives.
* **Bloom Filter** — "a tradeoff between the memory requirement and the
  false positive ratio (which induces false indications that the
  requested objects are in the P2P client cache)".  False positives make
  the proxy redirect a request into the P2P cache for nothing — a wasted
  ``Tp2p`` round the simulator charges explicitly.

Both are updated by the same events (store receipts add entries, client
eviction notices delete them, §4.3), so the directory never *misses* an
object that is present — only the Bloom variant can claim presence
falsely.  Deletion support is why the Bloom variant uses a *counting*
filter.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable

from ..bloom import CountingBloomFilter

__all__ = [
    "LookupDirectory",
    "ExactDirectory",
    "BloomDirectory",
    "LossyDirectory",
    "make_directory",
]

#: Bytes per Exact-Directory entry: one SHA-1-derived 128-bit objectId.
_OBJECT_ID_BYTES = 16


class LookupDirectory(ABC):
    """Interface the proxy queries before redirecting into the P2P cache."""

    @abstractmethod
    def add(self, obj: Hashable) -> None:
        """Record a store receipt for ``obj``."""

    @abstractmethod
    def remove(self, obj: Hashable) -> None:
        """Process an eviction notice for ``obj``."""

    @abstractmethod
    def __contains__(self, obj: Hashable) -> bool:
        """May the P2P cache hold ``obj``? (Bloom: possibly falsely yes.)"""

    @abstractmethod
    def __len__(self) -> int:
        """Entries currently tracked."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Memory footprint of the representation (the §4.2 tradeoff)."""

    def repair(self, obj: Hashable) -> None:
        """Proxy-local fix of a stale entry discovered by a failed lookup.

        Identical to :meth:`remove` here; :class:`LossyDirectory` (which
        drops *remote* eviction notices) overrides it to bypass the loss
        process — the proxy repairs its own table, no message involved.
        """
        self.remove(obj)


class ExactDirectory(LookupDirectory):
    """Precise hashtable of objectIds."""

    def __init__(self) -> None:
        self._entries: set[Hashable] = set()

    def add(self, obj: Hashable) -> None:
        self._entries.add(obj)

    def remove(self, obj: Hashable) -> None:
        self._entries.discard(obj)

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def memory_bytes(self) -> int:
        return _OBJECT_ID_BYTES * len(self._entries)


class BloomDirectory(LookupDirectory):
    """Counting-Bloom-filter directory: smaller, occasionally over-claims."""

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        self._filter = CountingBloomFilter(capacity=max(1, capacity), fp_rate=fp_rate)
        self._count = 0

    def add(self, obj: Hashable) -> None:
        self._filter.add(obj)
        self._count += 1

    def remove(self, obj: Hashable) -> None:
        if self._filter.discard(obj):
            self._count -= 1

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._filter

    def __len__(self) -> int:
        return self._count

    def memory_bytes(self) -> int:
        return self._filter.memory_bytes()

    @property
    def design_fp_rate(self) -> float:
        return self._filter.false_positive_rate(self._count)


class LossyDirectory(LookupDirectory):
    """A directory whose *eviction notices* are dropped probabilistically.

    Models the stale-entry failure mode beyond Bloom false positives
    (:mod:`repro.faults`): the client → proxy eviction notice (§4.3) is a
    network message, so under faults it can be lost — the entry then
    lingers and claims presence of a dead object until a lookup chases it,
    pays the wasted round and repairs it.  Store receipts are deliberately
    *not* lossy: a dropped receipt would make the directory miss a live
    object, which the paper's design rules out ("the directory never
    misses ... only claims falsely") and which would silently *reduce*
    load rather than model failure.

    Wraps any concrete directory; ``rng`` must be a dedicated substream
    (see :meth:`repro.faults.injector.FaultInjector.stream`) so drops are
    deterministic per plan seed.
    """

    def __init__(self, inner: LookupDirectory, drop_prob: float, rng) -> None:
        if not 0.0 <= drop_prob <= 1.0:
            raise ValueError("drop_prob must be in [0, 1]")
        self.inner = inner
        self.drop_prob = drop_prob
        self._rng = rng
        #: Eviction notices lost so far (each leaves one stale entry).
        self.dropped_notices = 0

    def add(self, obj: Hashable) -> None:
        self.inner.add(obj)

    def remove(self, obj: Hashable) -> None:
        if self._rng.random() < self.drop_prob:
            self.dropped_notices += 1
            return
        self.inner.remove(obj)

    def repair(self, obj: Hashable) -> None:
        # The proxy fixing its own table is local — never lost.
        self.inner.remove(obj)

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def memory_bytes(self) -> int:
        return self.inner.memory_bytes()


def make_directory(kind: str, capacity: int, fp_rate: float = 0.01) -> LookupDirectory:
    """Directory factory keyed by :attr:`SimulationConfig.directory`."""
    if kind == "exact":
        return ExactDirectory()
    if kind == "bloom":
        return BloomDirectory(capacity=capacity, fp_rate=fp_rate)
    raise ValueError(f"unknown directory kind {kind!r}")
