"""Trace-driven simulation engine.

The paper evaluates every scheme by replaying request traces against the
cache hierarchy and accumulating client-perceived latency (§5.1).  This
module provides the engine those schemes plug into:

* :class:`CachingScheme` — the per-scheme contract: given (cluster,
  client, object), decide which tier serves the request, mutating cache
  state along the way.
* :meth:`CachingScheme.run` — replays the per-cluster traces round-robin
  (request i of every cluster before request i+1 of any; the traces carry
  no timestamps because the paper's clusters are statistically
  identical), maps each served tier to its latency, and assembles the
  :class:`~repro.core.metrics.SchemeResult`.

The engine is deliberately minimal: all intelligence lives in the
schemes, so the simulator core stays identical for the upper-bound
models and the mechanism-level Hier-GD, and a measured difference between
two schemes can only come from the schemes themselves.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter, deque
from itertools import islice

import numpy as np

from ..netmodel import ALL_TIERS
from ..protocol.transport import Transport
from ..workload import Trace
from .config import ClusterSizing, SimulationConfig
from .metrics import SchemeResult

__all__ = ["CachingScheme"]


class CachingScheme(ABC):
    """Base class for all caching schemes (NC … FC-EC, Hier-GD)."""

    #: Registry name; subclasses must override.
    name = "abstract"

    def __init__(
        self,
        config: SimulationConfig,
        traces: list[Trace],
        transport: Transport | None = None,
    ) -> None:
        if len(traces) != config.n_proxies:
            raise ValueError(
                f"{config.n_proxies} proxies need {config.n_proxies} traces, "
                f"got {len(traces)}"
            )
        if not traces:
            raise ValueError("at least one trace required")
        self.config = config
        self.traces = traces
        sized = [getattr(t, "sizes", None) is not None for t in traces]
        if any(sized) and not all(sized):
            raise ValueError("all cluster traces must agree on carrying sizes")
        #: Shared per-object size table (bytes) when the workload carries
        #: sizes, else ``None``.  It is one Web: every cluster's trace is
        #: built over the same object universe, so the table from any
        #: trace serves all clusters.
        self.sizes = traces[0].sizes if sized[0] else None
        #: Same table as a plain list (fast per-request indexing).
        self._size_list = self.sizes.tolist() if self.sizes is not None else None
        self.sizings: list[ClusterSizing] = [config.sizing_for(t) for t in traces]
        #: Latency not attributable to a serving tier (e.g. wasted rounds
        #: caused by Bloom-directory false positives); added to the total.
        #: Schemes must report it through :meth:`add_extra_latency` so it
        #: respects the warmup window.
        self.extra_latency = 0.0
        self._in_warmup = False
        #: The cooperation-message carrier (:mod:`repro.protocol`): the
        #: base transport is the fault-free identity; a fault/observability
        #: stack gives the *same* scheme failure semantics or telemetry.
        self.transport = Transport(config.network) if transport is None else transport
        self.transport.bind(self)

    def add_extra_latency(self, amount: float) -> None:
        """Record off-tier latency (ignored during the warmup window)."""
        if not self._in_warmup:
            self.extra_latency += amount

    def _size_of(self, obj: int) -> int:
        """Object size in cache-capacity units (1 when sizes are off)."""
        return 1 if self._size_list is None else self._size_list[obj]

    # -- scheme contract ----------------------------------------------------

    @abstractmethod
    def process(self, cluster: int, client: int, obj: int) -> str:
        """Serve one request; return the serving tier (see netmodel)."""

    def finalize(self) -> tuple[dict[str, int], dict[str, float]]:
        """(messages, extras) accounting collected during the run.

        Upper-bound schemes have no protocol messages; Hier-GD overrides.
        """
        return {}, {}

    # -- engine ----------------------------------------------------------------

    def _warmup_requests(self, total_expected: int) -> int:
        """Requests excluded from statistics while caches warm.

        Sharded workers override this: their warmup window is a slice of
        the *global* round-robin stream, not a fraction of the local one.
        """
        return int(self.config.warmup_fraction * total_expected)

    def _block_requests(self, length: int) -> int:
        """Per-cluster request indexes flattened per engine iteration.

        In-memory traces flatten the whole interleave at once (one numpy
        transpose, as before); chunk-backed traces bound live memory by
        flattening one chunk window at a time — same request order, same
        results, flat RSS.
        """
        block = length
        for t in self.traces:
            if getattr(t, "chunked", False):
                block = min(block, t.chunk_requests)
        return max(1, block)

    def _after_block(self, upto: int) -> None:
        """Hook: one flattened block (requests ``[·, upto)`` of every
        cluster) has been fully processed.  No-op here; sharded workers
        override it to exchange presence digests at round boundaries
        (:mod:`repro.shard`)."""

    def run(self) -> SchemeResult:
        """Replay all traces and return the aggregated result."""
        net = self.config.network
        latency_of = {tier: net.latency(tier) for tier in ALL_TIERS}
        tier_counts = dict.fromkeys(ALL_TIERS, 0)
        total_latency = 0.0
        n_requests = 0
        # Byte accounting (size-aware runs only): bytes served per tier
        # over the measured window.  ``None`` keeps the equal-size request
        # loop on its original path.
        bytes_by_tier = (
            dict.fromkeys(ALL_TIERS, 0) if self.sizes is not None else None
        )

        process = self.process
        lengths = {len(t) for t in self.traces}
        total_expected = sum(len(t) for t in self.traces)
        warmup_n = self._warmup_requests(total_expected)
        self._in_warmup = warmup_n > 0

        if len(lengths) == 1:
            # Equal-length traces (every generated workload): flatten the
            # round-robin interleave up front with one numpy transpose so
            # the request loop runs entirely inside ``map`` — no
            # per-request interpreter iteration, length checks, or warmup
            # branching.  The warmup prefix is drained into a zero-length
            # deque (statistics excluded), the rest is tallied by
            # ``Counter`` at C speed, and latency is aggregated per tier
            # at the end instead of per request.  Chunk-backed traces run
            # the identical loop one chunk window at a time.
            n_clusters = len(self.traces)
            length = lengths.pop()
            if length:
                block = self._block_requests(length)
                counted: Counter = Counter()
                to_warm = warmup_n
                for a in range(0, length, block):
                    b = min(length, a + block)
                    objs = np.stack(
                        [t.object_slice(a, b) for t in self.traces], axis=1
                    ).ravel().tolist()
                    clients = np.stack(
                        [t.client_slice(a, b) for t in self.traces], axis=1
                    ).ravel().tolist()
                    clusters = list(range(n_clusters)) * (b - a)
                    tiers = map(process, clusters, clients, objs)
                    if bytes_by_tier is None:
                        if to_warm:
                            drained = min(to_warm, (b - a) * n_clusters)
                            deque(islice(tiers, drained), maxlen=0)  # warm
                            to_warm -= drained
                            if to_warm == 0:
                                self._in_warmup = False
                        counted.update(tiers)
                    else:
                        # Sized runs keep the served tiers aligned with the
                        # request stream so bytes land on the right tier.
                        served = list(tiers)
                        skip = 0
                        if to_warm:
                            skip = min(to_warm, len(served))
                            to_warm -= skip
                            if to_warm == 0:
                                self._in_warmup = False
                        counted.update(served[skip:])
                        size_of = self.sizes
                        for tier, obj in zip(served[skip:], objs[skip:]):
                            bytes_by_tier[tier] += int(size_of[obj])
                    self._after_block(b)
                self._in_warmup = False
                tier_counts.update(counted)
                n_requests = length * n_clusters - warmup_n
                total_latency = sum(
                    latency_of[t] * n for t, n in tier_counts.items() if n
                )
        else:
            # Ragged traces (hand-built tests): the original general loop.
            streams = [
                (t.object_ids.tolist(), t.client_ids.tolist()) for t in self.traces
            ]
            longest = max(len(objs) for objs, _ in streams)
            active = [c for c, (objs, _) in enumerate(streams) if objs]
            processed = 0
            for i in range(longest):
                for c in active:
                    objs, clients = streams[c]
                    if i < len(objs):
                        tier = process(c, clients[i], objs[i])
                        processed += 1
                        if processed <= warmup_n:
                            if processed == warmup_n:
                                self._in_warmup = False
                            continue  # caches warm, statistics excluded
                        tier_counts[tier] += 1
                        total_latency += latency_of[tier]
                        n_requests += 1
                        if bytes_by_tier is not None:
                            bytes_by_tier[tier] += int(self.sizes[objs[i]])

        messages, extras = self.finalize()
        if bytes_by_tier is not None:
            extras = dict(extras)
            extras["bytes_total"] = float(sum(bytes_by_tier.values()))
            for tier, nbytes in bytes_by_tier.items():
                if nbytes:
                    extras[f"bytes_{tier}"] = float(nbytes)
            extras["byte_latency"] = float(
                sum(latency_of[t] * nb for t, nb in bytes_by_tier.items())
            )
        return SchemeResult(
            scheme=self.name,
            n_requests=n_requests,
            total_latency=total_latency + self.extra_latency,
            tier_counts={t: n for t, n in tier_counts.items() if n},
            messages=messages,
            extras=extras,
        )
