"""Hier-GD — the paper's cooperative hierarchical greedy-dual algorithm.

Unlike the upper-bound schemes, Hier-GD is simulated *mechanistically*,
i.e. with every moving part of §§3–4 actually running:

* the proxy and every individual client cache run the local greedy-dual
  algorithm (efficient O(log n) implementation);
* each client cluster's cooperative client caches form a real Pastry
  overlay (:mod:`repro.overlay`); objects are mapped to client caches by
  SHA-1 objectIds and DHT placement (§4.1);
* a proxy eviction ``d1`` is passed down per the Figure 1 pseudo-code:
  route to the destination cache A; if A has free space it stores d1;
  otherwise **object diversion** tries an overlay neighbour B with free
  space (A keeps a pointer, §4.3); otherwise A runs greedy-dual, stores
  d1, discards its own eviction d2, and the proxy's **lookup directory**
  (Exact or Bloom, §4.2) is updated for both d1 and d2 via store
  receipts / eviction notices;
* destaged objects are **piggybacked** on HTTP responses (§4.4) — the
  simulator counts the connections this saves;
* a cooperating proxy reaches objects in this cluster's P2P cache
  through the **push protocol** (§4.5), because client caches sit behind
  the firewall: request → owner proxy → Pastry-routed push request →
  client pushes to its proxy → forwarded to the requesting proxy.

Inter-proxy cooperation is SC-style (serve each other's misses) — the
point of Hier-GD is that full replacement coordination is *not* needed:
greedy-dual provides implicit coordination (§3).

Latency/cost coupling: the greedy-dual ``cost`` of an object is the
latency the proxy actually paid to fetch it (``Tp2p``, ``Tc``,
``Tc+Tp2p`` or ``Ts``) — this is what makes GD cost-aware and is why it
approaches the cost-benefit upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush

from ..cache import Cache, GreedyDualCache, LfuCache, LruCache
from ..netmodel import (
    TIER_COOP_P2P,
    TIER_COOP_PROXY,
    TIER_LOCAL_P2P,
    TIER_LOCAL_PROXY,
    TIER_SERVER,
)
from ..overlay import (
    Dht,
    OverlayBackend,
    build_owner_table,
    make_overlay,
    object_ids_for_urls,
)
from ..protocol.chain import push_stage, serve_miss
from ..protocol.transport import Transport
from ..workload import Trace, object_url
from .config import SimulationConfig
from .directory import LookupDirectory, LossyDirectory, make_directory
from .presence import PresenceIndex
from .simulator import CachingScheme

__all__ = ["HierGdScheme"]


@dataclass(slots=True)
class _ClusterState:
    """Everything one proxy + its P2P client cache carries at runtime."""

    proxy: Cache
    clients: list[Cache]
    overlay: OverlayBackend
    dht: Dht
    idx_of_node: dict[int, int]
    node_of_idx: list[int]
    directory: LookupDirectory
    #: Ground truth: objects currently stored somewhere in the P2P cache.
    p2p_present: set[int] = field(default_factory=set)
    #: Owner-side diversion pointers: owner idx -> {obj -> holder idx}.
    pointers: dict[int, dict[int, int]] = field(default_factory=dict)
    #: PAST-style extra copies: obj -> replica holder idxs (primary excluded).
    replicas: dict[int, set[int]] = field(default_factory=dict)
    #: Last retrieval cost per object (greedy-dual's cost input).
    costs: dict[int, float] = field(default_factory=dict)
    #: Memoised DHT owner per object (reference engine only).
    owner_memo: dict[int, int] = field(default_factory=dict)
    # -- hot-path engine state (None/-1 until built; fast mode only) ------
    #: This cluster's index (for presence-index bookkeeping).
    cluster: int = -1
    #: Precomputed DHT placement: object id -> owner client index.
    owner_of: list[int] | None = None
    #: Per client index: overlay neighbourhood (Pastry leaf set / Chord
    #: successor list) as client indexes, in the backend's contract order
    #: so diversion/replication walk the same candidates.
    neighbour_idx: list[list[int]] | None = None
    #: Overlay epoch the placement tables were built against.
    built_epoch: int = -1
    #: Client indexes with free space (monotonically shrinking in the
    #: plain scheme: client caches only ever fill).  Replaces per-miss
    #: ``free_space`` scans in the pass-down path.
    free_clients: set[int] | None = None
    #: Per client: that cache's membership dict (friend access), so the
    #: hot path answers ``contains`` with one dict probe.
    member_maps: list | None = None
    #: Exact directory's backing set (friend access) — None under Bloom,
    #: where add/remove must go through the filter's methods.
    dir_set: set | None = None
    #: Fast step-2 membership probe: the ``p2p_present`` set when the
    #: directory is exact (identical membership, cheaper probe), the
    #: directory itself when it is a Bloom filter (false positives are
    #: modelled behaviour and must keep happening).
    dir_probe: object = None


class HierGdScheme(CachingScheme):
    """The practical scheme: GD caches + Pastry P2P tier + directories."""

    name = "hier-gd"

    #: Subclasses whose state the fast engine cannot mirror (e.g. churn's
    #: lazily-repaired directories) set this to pin the reference engine.
    _force_reference = False

    def __init__(
        self,
        config: SimulationConfig,
        traces: list[Trace],
        transport: Transport | None = None,
    ) -> None:
        super().__init__(config, traces, transport)
        net = config.network
        self._t_server = net.t_server
        self._t_coop = net.t_coop
        self._t_p2p = net.t_p2p
        faulty = self.transport.faulty
        # A fault layer needs every cooperation hop routed through the
        # transport, which the fast engine inlines away: pin the
        # reference engine whenever a fault process is active.  The same
        # pin applies when the workload carries object sizes: the fast
        # engine's free-space tracking (monotone "full forever" sets) and
        # the fused unit-size GD insert both assume equal-size objects.
        self._fast = (
            config.hot_path == "fast"
            and not self._force_reference
            and not faulty
            and self.sizes is None
        )
        #: Where a directory over-claim is counted: a stale entry under
        #: fault injection (exact directories go stale through dropped
        #: eviction notices), a false positive otherwise (Bloom).
        self._overclaim_key = (
            "stale_directory_hits"
            if faulty and config.directory == "exact"
            else "directory_false_positives"
        )
        self._promote = config.promote_on_p2p_hit
        self._diversion = config.object_diversion
        self._replicas_extra = config.p2p_replicas - 1
        self._destage_key = (
            "piggybacked_destages" if config.piggyback
            else "dedicated_destage_connections"
        )
        #: Fast mode + greedy-dual proxies: ``process`` inlines the proxy
        #: hit path (the single hottest branch of the whole simulator).
        self._gd_inline = self._fast and config.hiergd_policy == "gd"
        #: object -> clusters whose *proxy* currently caches it (step 3).
        self._proxy_presence = PresenceIndex()
        #: object -> clusters whose exact directory lists it (step 4);
        #: None under Bloom directories, whose false positives must keep
        #: firing, so step 4 keeps the reference scan there.
        self._dir_presence = (
            PresenceIndex() if self._fast and config.directory == "exact" else None
        )
        self._msg: dict[str, int] = {
            "passdowns": 0,
            "piggybacked_destages": 0,
            "dedicated_destage_connections": 0,
            "store_receipts": 0,
            "diversions": 0,
            "client_evictions": 0,
            "p2p_lookups": 0,
            "push_requests": 0,
            "directory_false_positives": 0,
            "replicas_stored": 0,
        }
        # A fault layer merges its FAULT_COUNTERS into this dict (no-op
        # under the base transport).
        self.transport.install_counters(self._msg)
        self._object_keys = None  # shared objectId array, built lazily
        #: Mean object size (bytes) when sized — converts byte-denominated
        #: capacities into expected object counts for directory sizing.
        self._mean_size = (
            float(self.sizes.mean()) if self.sizes is not None else 1.0
        )
        self.states: list[_ClusterState] = []
        for ci, sizing in enumerate(self.sizings):
            overlay = make_overlay(config)
            names = [f"cluster{ci}/cache{k}" for k in range(sizing.n_clients)]
            if self._fast:
                nodes = overlay.bulk_add_named(names)
            else:
                nodes = [overlay.add_named(name) for name in names]
            node_of_idx = [node.node_id for node in nodes]
            idx_of_node = {nid: k for k, nid in enumerate(node_of_idx)}
            state = _ClusterState(
                proxy=self._make_cache(sizing.proxy_size),
                clients=[
                    self._make_cache(sizing.client_size)
                    for _ in range(sizing.n_clients)
                ],
                overlay=overlay,
                dht=Dht(overlay, hop_sample_rate=config.hop_sample_rate),
                idx_of_node=idx_of_node,
                node_of_idx=node_of_idx,
                directory=self.transport.wrap_directory(
                    make_directory(
                        config.directory,
                        # Directory capacity is an *object count*; under
                        # byte-denominated sizing, estimate it from the
                        # mean object size.
                        capacity=max(1, round(sizing.p2p_size / self._mean_size)),
                        fp_rate=config.bloom_fp_rate,
                    ),
                    ci,
                ),
                cluster=ci,
            )
            state.dir_probe = (
                state.directory if self._dir_presence is None else state.p2p_present
            )
            if self._fast:
                # Caches start empty: free <=> nonzero capacity.
                state.free_clients = {
                    k for k, c in enumerate(state.clients) if c.capacity > 0
                }
                state.member_maps = [self._member_map(c) for c in state.clients]
                if config.directory == "exact":
                    state.dir_set = state.directory._entries
            self.states.append(state)

    @staticmethod
    def _member_map(cache: Cache) -> dict:
        """The cache's key-membership dict (friend access; identity is
        stable — no policy rebinds it after construction)."""
        if isinstance(cache, LfuCache):
            return cache._sizes
        return cache._entries  # GreedyDualCache and LruCache

    # -- hot-path placement tables ------------------------------------------

    def _build_placement(self, state: _ClusterState) -> None:
        """(Re)build this cluster's precomputed DHT placement tables.

        One batched SHA-1 pass over every object URL (shared across
        clusters — the id space is the same) and one vectorised
        sorted-ring resolution replace per-object ``Dht.owner`` memo
        fills.  A sampled subset is routed hop-by-hop so the mean-hops
        extra stays populated, with each delivery asserted against the
        table.  Tables are keyed to the overlay epoch and rebuilt on
        membership change.
        """
        overlay = state.overlay
        if self._object_keys is None:
            n_objects = 0
            for trace in self.traces:
                if len(trace.object_ids):
                    n_objects = max(n_objects, int(trace.object_ids.max()) + 1)
            self._object_keys = object_ids_for_urls(
                [object_url(i) for i in range(n_objects)], overlay.space
            )
        owners = build_owner_table(
            overlay,
            self._object_keys,
            sample_rate=self.config.hop_sample_rate,
            record_stats=True,
        )
        idx_of_node = state.idx_of_node
        state.owner_of = [idx_of_node[nid] for nid in owners]
        state.neighbour_idx = [
            [idx_of_node[nb] for nb in overlay.neighbourhood(nid)]
            for nid in state.node_of_idx
        ]
        state.built_epoch = overlay.epoch

    def _make_cache(self, capacity: int) -> Cache:
        """Local replacement policy per :attr:`SimulationConfig.hiergd_policy`.

        The default is greedy-dual (the algorithm's namesake); LRU and
        LFU exist to measure the paper's §3 claim that GD's implicit
        coordination beats both.
        """
        policy = self.config.hiergd_policy
        if policy == "gd":
            return GreedyDualCache(
                capacity,
                default_cost=self._t_server,
                credit_by_size=self.config.gd_cost_model == "gds",
            )
        if policy == "lru":
            return LruCache(capacity)
        return LfuCache(capacity, reset_on_evict=self.config.lfu_reset_on_evict)

    # -- DHT placement ------------------------------------------------------

    def _owner(self, state: _ClusterState, obj: int) -> int:
        """Client index of the DHT owner of ``obj`` in this cluster."""
        if self._fast:
            if state.built_epoch != state.overlay.epoch:
                self._build_placement(state)
            return state.owner_of[obj]
        idx = state.owner_memo.get(obj)
        if idx is None:
            object_id = state.dht.object_id(object_url(obj))
            idx = state.idx_of_node[state.dht.owner(object_id)]
            state.owner_memo[obj] = idx
        return idx

    def _locate(
        self, state: _ClusterState, obj: int, owner: int | None = None
    ) -> int | None:
        """Actual holder of ``obj``: owner, divertee, or a live replica.

        Callers that already resolved the owner pass it in so the DHT
        placement is computed once per request, not once per step.
        """
        if owner is None:
            owner = self._owner(state, obj)
        if state.clients[owner].contains(obj):
            return owner
        holder = state.pointers.get(owner, {}).get(obj)
        if holder is not None and state.clients[holder].contains(obj):
            return holder
        reps = state.replicas.get(obj)
        if reps:
            for idx in list(reps):
                if state.clients[idx].contains(obj):
                    return idx
                reps.discard(idx)  # lazily drop dead replica entries
            if not reps:
                del state.replicas[obj]
        return None

    # -- Figure 1: pass-down with object diversion -----------------------------

    def _pass_down(self, state: _ClusterState, obj: int) -> None:
        """Destage a proxy-evicted object into the P2P client cache."""
        self._msg["passdowns"] += 1
        if self.config.piggyback:
            self._msg["piggybacked_destages"] += 1
        else:
            self._msg["dedicated_destage_connections"] += 1

        cost = state.costs.get(obj, self._t_server)
        size = self._size_of(obj)
        owner_idx = self._owner(state, obj)
        holder = self._locate(state, obj, owner_idx)
        if holder is not None:
            # Already stored (e.g. destaged before and later promoted back
            # up): refresh its greedy-dual credit instead of duplicating.
            state.clients[holder].lookup(obj)
            return

        owner_cache = state.clients[owner_idx]

        # (3)-(5): free space at the destination — store directly.
        if owner_cache.free_space >= size:
            owner_cache.insert(obj, cost=cost, size=size)
            self._record_store(state, obj)
            self._replicate(state, obj, cost, primary_idx=owner_idx, owner_idx=owner_idx)
            return

        # (7)-(10): object diversion to an overlay neighbour with free space.
        if self.config.object_diversion:
            divertee = self._pick_divertee(state, owner_idx, size)
            if divertee is not None:
                state.clients[divertee].insert(obj, cost=cost, size=size)
                state.pointers.setdefault(owner_idx, {})[obj] = divertee
                self._msg["diversions"] += 1
                self._record_store(state, obj)
                self._replicate(state, obj, cost, primary_idx=divertee, owner_idx=owner_idx)
                return

        # (12)-(14): replacement at the destination; its eviction d2 is
        # simply discarded (§3) after notifying the proxy's directory.
        evicted = owner_cache.insert(obj, cost=cost, size=size)
        stored = True
        for d2 in evicted:
            if d2 == obj:
                stored = False  # zero-capacity client caches reject
                continue
            self._on_client_eviction(state, owner_idx, d2)
        if stored:
            self._record_store(state, obj)
            self._replicate(state, obj, cost, primary_idx=owner_idx, owner_idx=owner_idx)

    def _pass_down_fast(self, state: _ClusterState, obj: int) -> None:
        """Fast-engine pass-down: `_pass_down` with every helper inlined.

        Same Figure-1 mechanism, three structural shortcuts (each proved
        equivalent by the hot-path equivalence suite):

        * the already-stored refresh probe is one ``p2p_present`` set test
          (in the plain scheme ``obj in p2p_present`` iff ``_locate`` finds
          a holder — the directory-consistency invariant);
        * the free-space checks walk ``state.free_clients``, which shrinks
          monotonically as client caches fill, instead of re-deriving
          free space per candidate — membership filtering preserves the
          divertee scan's candidate order and max-free tie-breaks;
        * store receipts and eviction notices are inlined with the
          owner-holds ``_locate`` probe answered by the membership dict.
        """
        msg = self._msg
        msg["passdowns"] += 1
        msg[self._destage_key] += 1
        clients = state.clients
        owner_of = state.owner_of
        owner_idx = owner_of[obj]
        if obj in state.p2p_present:
            # Already stored (e.g. destaged before and later promoted back
            # up): refresh its greedy-dual credit instead of duplicating.
            holder = (
                owner_idx
                if obj in state.member_maps[owner_idx]
                else self._locate(state, obj, owner_idx)
            )
            clients[holder].lookup(obj)
            return

        cost = state.costs.get(obj, self._t_server)
        free = state.free_clients
        stored = True
        divertee = None
        if owner_idx in free:
            # (3)-(5): free space at the destination — store directly.
            cache = clients[owner_idx]
            cache.insert(obj, cost=cost)
            if cache._used >= cache.capacity:
                free.discard(owner_idx)
        else:
            divertee = None
            if self._diversion and free:
                # (7)-(10): neighbourhood member with the most free space.
                best_free = 0
                for idx in state.neighbour_idx[owner_idx]:
                    if idx in free:
                        c = clients[idx]
                        f = c.capacity - c._used
                        if f > best_free:
                            divertee, best_free = idx, f
            if divertee is not None:
                cache = clients[divertee]
                cache.insert(obj, cost=cost)
                if cache._used >= cache.capacity:
                    free.discard(divertee)
                state.pointers.setdefault(owner_idx, {})[obj] = divertee
                msg["diversions"] += 1
            else:
                # (12)-(14): replacement at the destination; its eviction
                # d2 is discarded (§3) after notifying the directory.
                owner_cache = clients[owner_idx]
                if self._gd_inline and owner_cache.capacity >= 1:
                    # Fused GreedyDualCache.insert, as in _proxy_insert:
                    # obj is cached nowhere in the cluster (p2p_present
                    # checked above), so no refresh branch and an
                    # unconditional eager push; victims never equal obj.
                    entries = owner_cache._entries
                    used = owner_cache._used
                    capacity = owner_cache.capacity
                    heap = owner_cache._heap
                    live = heap._live
                    hl = heap._heap
                    stats = owner_cache.stats
                    inflation = owner_cache.inflation
                    evicted = []
                    while used >= capacity:
                        prio, seq, victim = heappop(hl)
                        rec = live.get(victim)
                        if rec is None:
                            continue
                        if rec[1] != seq:
                            if not rec[2]:
                                live[victim] = (rec[0], rec[1], True)
                                heappush(hl, (rec[0], rec[1], victim))
                            continue
                        del live[victim]
                        if prio > inflation:
                            inflation = prio
                        del entries[victim]
                        used -= 1
                        evicted.append(victim)
                        stats.evictions += 1
                    owner_cache.inflation = inflation
                    entries[obj] = (1, cost)
                    seq = heap._seq + 1
                    heap._seq = seq
                    prio = inflation + cost
                    live[obj] = (prio, seq, True)
                    heappush(hl, (prio, seq, obj))
                    if len(hl) > (len(live) << 1) + 8:
                        heap._compact()
                    owner_cache._used = used + 1
                    stats.insertions += 1
                else:
                    evicted = owner_cache.insert(obj, cost=cost)
                member_maps = state.member_maps
                present = state.p2p_present
                for d2 in evicted:
                    if d2 == obj:
                        stored = False  # zero-capacity client caches reject
                        continue
                    # Inlined _on_client_eviction(state, owner_idx, d2),
                    # with the _locate reachability probe unrolled — the
                    # common outcome here is "last copy died" (the victim
                    # lived at its owner, no pointer, no replicas), so the
                    # cheap membership probes usually decide it.
                    msg["client_evictions"] += 1
                    d2_owner = owner_of[d2]
                    ptrs = state.pointers.get(d2_owner)
                    if (
                        d2_owner != owner_idx
                        and ptrs is not None
                        and ptrs.get(d2) == owner_idx
                    ):
                        del ptrs[d2]
                    reps = state.replicas.get(d2)
                    if reps:
                        reps.discard(owner_idx)
                        if not reps:
                            del state.replicas[d2]
                            reps = None
                    if d2 not in present:
                        continue
                    if d2 in member_maps[d2_owner]:
                        continue  # still at its owner
                    if ptrs is not None:
                        holder2 = ptrs.get(d2)
                        if holder2 is not None and d2 in member_maps[holder2]:
                            continue  # reachable through a diversion pointer
                    if reps and self._locate(state, d2, d2_owner) is not None:
                        continue  # a live replica keeps it reachable
                    present.discard(d2)
                    ds = state.dir_set
                    if ds is not None:
                        # Exact directory: direct set ops plus the inlined
                        # PresenceIndex.discard on the directory index.
                        ds.discard(d2)
                        holders = self._dir_presence._holders
                        s = holders.get(d2)
                        if s is not None:
                            s.discard(state.cluster)
                            if not s:
                                del holders[d2]
                    else:
                        state.directory.remove(d2)
        if stored:
            # Inlined _record_store: obj was not in p2p_present (checked
            # at the top, nothing re-added it since), so add directly.
            msg["store_receipts"] += 1
            state.p2p_present.add(obj)
            ds = state.dir_set
            if ds is not None:
                # Exact directory: direct set ops plus the inlined
                # PresenceIndex.add on the directory index.
                ds.add(obj)
                holders = self._dir_presence._holders
                s = holders.get(obj)
                if s is None:
                    holders[obj] = {state.cluster}
                else:
                    s.add(state.cluster)
            else:
                state.directory.add(obj)
            if self._replicas_extra > 0:
                self._replicate(
                    state, obj, cost,
                    primary_idx=owner_idx if divertee is None else divertee,
                    owner_idx=owner_idx,
                )

    def _replicate(
        self,
        state: _ClusterState,
        obj: int,
        cost: float,
        primary_idx: int,
        owner_idx: int | None = None,
    ) -> None:
        """Best-effort PAST-style replication in the owner's neighbourhood.

        Extra copies (``p2p_replicas - 1``) go to the neighbourhood members
        with free space — never displacing cached objects, so replication
        costs no capacity under pressure, only spare space.  Replicas are
        availability insurance: under client churn an object survives as
        long as one copy does (see :mod:`repro.core.churn`).
        """
        extra = self.config.p2p_replicas - 1
        if extra <= 0:
            return
        if owner_idx is None:
            owner_idx = self._owner(state, obj)
        size = self._size_of(obj)
        existing = state.replicas.get(obj, set())
        for idx in self._neighbour_indexes(state, owner_idx):
            if extra <= 0:
                break
            if idx == primary_idx or idx in existing:
                continue
            cache = state.clients[idx]
            if cache.free_space >= size and not cache.contains(obj):
                cache.insert(obj, cost=cost, size=size)
                if self._fast and cache._used >= cache.capacity:
                    state.free_clients.discard(idx)
                state.replicas.setdefault(obj, set()).add(idx)
                self._msg["replicas_stored"] += 1
                extra -= 1

    def _neighbour_indexes(self, state: _ClusterState, owner_idx: int) -> list[int]:
        """Overlay neighbourhood of ``owner_idx`` as client indexes.

        Fast mode serves the precomputed table (the backend's contract
        order, so diversion/replication walk identical candidates); the
        reference engine maps through the overlay on every call.
        """
        if self._fast:
            return state.neighbour_idx[owner_idx]
        owner_nid = state.node_of_idx[owner_idx]
        return [state.idx_of_node[nb] for nb in state.overlay.neighbourhood(owner_nid)]

    def _pick_divertee(
        self, state: _ClusterState, owner_idx: int, size: int = 1
    ) -> int | None:
        """Neighbourhood member with the most free space (storage balancing).

        Only members that can actually hold the object (free space of at
        least ``size``) qualify; at unit sizes that is the original
        "any free space" rule.
        """
        best: int | None = None
        best_free = size - 1  # a candidate must fit the object
        clients = state.clients
        for idx in self._neighbour_indexes(state, owner_idx):
            cache = clients[idx]
            # == cache.free_space: every policy here tracks used units in
            # ``_used`` and the insert paths keep it <= capacity.
            free = cache.capacity - cache._used
            if free > best_free:
                best, best_free = idx, free
        return best

    def _record_store(self, state: _ClusterState, obj: int) -> None:
        """Store receipt: destination confirms, proxy updates directory."""
        self._msg["store_receipts"] += 1
        if obj not in state.p2p_present:
            state.p2p_present.add(obj)
            state.directory.add(obj)
            if self._dir_presence is not None:
                self._dir_presence.add(obj, state.cluster)

    def _on_client_eviction(self, state: _ClusterState, holder_idx: int, obj: int) -> None:
        """Eviction notice: clean pointers/replicas and the directory.

        With replication, the object only leaves the directory when its
        *last* copy dies — a surviving replica keeps it reachable via
        :meth:`_locate`.
        """
        self._msg["client_evictions"] += 1
        owner = self._owner(state, obj)
        if owner != holder_idx:
            ptrs = state.pointers.get(owner)
            if ptrs and ptrs.get(obj) == holder_idx:
                del ptrs[obj]
        reps = state.replicas.get(obj)
        if reps:
            reps.discard(holder_idx)
            if not reps:
                del state.replicas[obj]
        if obj in state.p2p_present and self._locate(state, obj, owner) is None:
            state.p2p_present.discard(obj)
            state.directory.remove(obj)
            if self._dir_presence is not None:
                self._dir_presence.discard(obj, state.cluster)

    # -- proxy-side insert (GD on each fetched object) -------------------------

    def _proxy_insert(self, state: _ClusterState, obj: int, cost: float) -> None:
        state.costs[obj] = cost
        proxy = state.proxy
        if self._gd_inline and proxy.capacity >= 1:
            # Fused GreedyDualCache.insert (friend access): ``obj`` just
            # missed, so it is cached nowhere in the proxy (entries and
            # heap live keys always coincide) — the refresh branch and the
            # eager/lazy comparison collapse to an unconditional eager
            # push at ``inflation + cost`` (unit size).  The pop loop is
            # ``HeapDict``'s lazy reconciliation verbatim.
            entries = proxy._entries
            used = proxy._used
            capacity = proxy.capacity
            heap = proxy._heap
            live = heap._live
            hl = heap._heap
            holders = self._proxy_presence._holders
            cluster = state.cluster
            inflation = proxy.inflation
            evicted = None
            if used >= capacity:
                stats = proxy.stats
                evicted = []
                while used >= capacity:
                    prio, seq, victim = heappop(hl)
                    rec = live.get(victim)
                    if rec is None:
                        continue
                    if rec[1] != seq:
                        if not rec[2]:
                            live[victim] = (rec[0], rec[1], True)
                            heappush(hl, (rec[0], rec[1], victim))
                        continue
                    del live[victim]
                    if prio > inflation:
                        inflation = prio
                    del entries[victim]
                    used -= 1
                    evicted.append(victim)
                    stats.evictions += 1
                proxy.inflation = inflation
            entries[obj] = (1, cost)
            seq = heap._seq + 1
            heap._seq = seq
            prio = inflation + cost
            live[obj] = (prio, seq, True)
            heappush(hl, (prio, seq, obj))
            if len(hl) > (len(live) << 1) + 8:
                heap._compact()
            proxy._used = used + 1
            proxy.stats.insertions += 1
            # Inlined PresenceIndex.add (capacity >= 1: always stored).
            s = holders.get(obj)
            if s is None:
                holders[obj] = {cluster}
            else:
                s.add(cluster)
            if evicted:
                for d1 in evicted:
                    # Victims were cached, obj was not: d1 != obj always.
                    s = holders.get(d1)
                    if s is not None:
                        s.discard(cluster)
                        if not s:
                            del holders[d1]
                    self._pass_down_fast(state, d1)
            return
        evicted = proxy.insert(obj, cost=cost, size=self._size_of(obj))
        if self._fast:
            # Inlined PresenceIndex.add/discard on the proxy index.
            holders = self._proxy_presence._holders
            cluster = state.cluster
            stored = True
            for d1 in evicted:
                if d1 != obj:
                    s = holders.get(d1)
                    if s is not None:
                        s.discard(cluster)
                        if not s:
                            del holders[d1]
                    self._pass_down_fast(state, d1)
                else:
                    stored = False  # capacity-zero proxies reject the insert
            if stored:
                s = holders.get(obj)
                if s is None:
                    holders[obj] = {cluster}
                else:
                    s.add(cluster)
            return
        for d1 in evicted:
            if d1 != obj:
                self._pass_down(state, d1)

    # -- request path -----------------------------------------------------------

    def process(self, cluster: int, client: int, obj: int) -> str:
        state = self.states[cluster]
        # 1. Local proxy cache (greedy-dual bookkeeping on hit).  With GD
        # proxies the fast engine inlines the hit path — ~3 of every 4
        # requests end right here, so this branch is the simulator's
        # single hottest stretch of code (friend access into the cache and
        # its heap; the pushed entries are exactly what ``lookup`` pushes).
        if self._gd_inline:
            proxy = state.proxy
            entry = proxy._entries.get(obj)
            if entry is not None:
                # Monotone credit refresh -> lazy-heap no-push path
                # (mirrors GreedyDualCache.lookup; entries here are always
                # unit-size ``(1, cost)``, so cost/size is just entry[1]).
                heap = proxy._heap
                seq = heap._seq + 1
                heap._seq = seq
                heap._live[obj] = (proxy.inflation + entry[1], seq, False)
                proxy.stats.hits += 1
                return TIER_LOCAL_PROXY
            proxy.stats.misses += 1
        else:
            if state.proxy.lookup(obj):
                return TIER_LOCAL_PROXY
            if not self._fast:
                return self._miss_reference(state, cluster, obj)
        if state.built_epoch != state.overlay.epoch:
            self._build_placement(state)
        msg = self._msg

        # 2. Own P2P client cache, via the lookup directory.  ``dir_probe``
        # is the p2p_present set under an exact directory (identical
        # membership) and the Bloom filter otherwise (false positives are
        # modelled behaviour).
        if obj in state.dir_probe:
            msg["p2p_lookups"] += 1
            owner = state.owner_of[obj]
            holder = (
                owner
                if obj in state.member_maps[owner]
                else self._locate(state, obj, owner)
            )
            if holder is not None:
                state.clients[holder].lookup(obj)  # GD credit refresh
                if self._promote:
                    self._proxy_insert(state, obj, cost=self._t_p2p)
                return TIER_LOCAL_P2P
            # Bloom false positive: a wasted LAN round into the overlay.
            msg["directory_false_positives"] += 1
            self.add_extra_latency(self._t_p2p)

        # 3. Cooperating proxies, via the proxy presence index — the
        # smallest holder index is what the reference ascending scan hits
        # (inlined PresenceIndex.first_holder).
        s = self._proxy_presence._holders.get(obj)
        if s:
            first = None
            for c in s:
                if c != cluster and (first is None or c < first):
                    first = c
            if first is not None:
                self._proxy_insert(state, obj, cost=self._t_coop)
                return TIER_COOP_PROXY

        # ... then their P2P client caches through the push protocol.
        if self._dir_presence is not None:
            # Exact directories: membership mirrors p2p_present, so the
            # first listed cluster always serves (no false positives) and
            # exactly one push request goes out — as in the scan.
            other = self._dir_presence.first_holder(obj, cluster)
            if other is not None:
                other_state = self.states[other]
                msg["push_requests"] += 1
                owner = other_state.owner_of[obj]
                holder = (
                    owner
                    if obj in other_state.member_maps[owner]
                    else self._locate(other_state, obj, owner)
                )
                other_state.clients[holder].lookup(obj)
                self._proxy_insert(state, obj, cost=self._t_coop + self._t_p2p)
                return TIER_COOP_P2P
        else:
            # Bloom directories: keep the scan — a remote false positive
            # must still cost a wasted push round per §4.2's accounting.
            tier = self._coop_p2p_scan(state, cluster, obj)
            if tier is not None:
                return tier

        # 4. Origin server.
        self._proxy_insert(state, obj, cost=self._t_server)
        return TIER_SERVER

    # -- reference serving seams (shared with ``repro.protocol.chain``) -------

    def _serve_p2p_hit(self, state: _ClusterState, holder: int, obj: int) -> str:
        """Serve from the own P2P cache: GD credit refresh + promotion."""
        state.clients[holder].lookup(obj)  # GD credit refresh
        if self._promote:
            self._proxy_insert(state, obj, cost=self._t_p2p)
        return TIER_LOCAL_P2P

    def _serve_push_hit(
        self, state: _ClusterState, other_state: _ClusterState, holder: int, obj: int
    ) -> str:
        """Serve via the push protocol from another cluster's P2P cache."""
        other_state.clients[holder].lookup(obj)
        self._proxy_insert(state, obj, cost=self._t_coop + self._t_p2p)
        return TIER_COOP_P2P

    def _coop_p2p_scan(self, state: _ClusterState, cluster: int, obj: int) -> str | None:
        """Reference step-4 scan over the other clusters' directories."""
        return push_stage(self, state, cluster, obj)

    def _miss_reference(self, state: _ClusterState, cluster: int, obj: int) -> str:
        """Reference engine: the transport-mediated protocol chain.

        :func:`repro.protocol.chain.serve_miss` under the base transport
        is the original O(n_proxies)-scan miss path verbatim; it doubles
        as the behavioural oracle for the fast engine (the hot-path
        equivalence suite runs both), the only correct engine under
        churn (whose lazily-repaired directories the presence indexes
        cannot mirror), and — under a fault transport — the fault-aware
        chain, without a subclass fork.
        """
        return serve_miss(self, state, cluster, obj)

    # -- reporting ------------------------------------------------------------------

    def finalize(self) -> tuple[dict[str, int], dict[str, float]]:
        extras: dict[str, float] = {"extra_latency": self.extra_latency}
        total_msgs = sum(s.overlay.stats.messages for s in self.states)
        total_hops = sum(s.overlay.stats.total_hops for s in self.states)
        if total_msgs:
            extras[f"mean_{self.states[0].overlay.name}_hops"] = total_hops / total_msgs
        extras["directory_bytes"] = float(
            sum(s.directory.memory_bytes() for s in self.states)
        )
        extras["p2p_objects"] = float(sum(len(s.p2p_present) for s in self.states))
        messages = dict(self._msg)
        if self.transport.faulty:
            messages["dropped_eviction_notices"] = sum(
                s.directory.dropped_notices
                for s in self.states
                if isinstance(s.directory, LossyDirectory)
            )
        return messages, extras
