"""Hier-GD — the paper's cooperative hierarchical greedy-dual algorithm.

Unlike the upper-bound schemes, Hier-GD is simulated *mechanistically*,
i.e. with every moving part of §§3–4 actually running:

* the proxy and every individual client cache run the local greedy-dual
  algorithm (efficient O(log n) implementation);
* each client cluster's cooperative client caches form a real Pastry
  overlay (:mod:`repro.overlay`); objects are mapped to client caches by
  SHA-1 objectIds and DHT placement (§4.1);
* a proxy eviction ``d1`` is passed down per the Figure 1 pseudo-code:
  route to the destination cache A; if A has free space it stores d1;
  otherwise **object diversion** tries a leaf-set member B with free
  space (A keeps a pointer, §4.3); otherwise A runs greedy-dual, stores
  d1, discards its own eviction d2, and the proxy's **lookup directory**
  (Exact or Bloom, §4.2) is updated for both d1 and d2 via store
  receipts / eviction notices;
* destaged objects are **piggybacked** on HTTP responses (§4.4) — the
  simulator counts the connections this saves;
* a cooperating proxy reaches objects in this cluster's P2P cache
  through the **push protocol** (§4.5), because client caches sit behind
  the firewall: request → owner proxy → Pastry-routed push request →
  client pushes to its proxy → forwarded to the requesting proxy.

Inter-proxy cooperation is SC-style (serve each other's misses) — the
point of Hier-GD is that full replacement coordination is *not* needed:
greedy-dual provides implicit coordination (§3).

Latency/cost coupling: the greedy-dual ``cost`` of an object is the
latency the proxy actually paid to fetch it (``Tp2p``, ``Tc``,
``Tc+Tp2p`` or ``Ts``) — this is what makes GD cost-aware and is why it
approaches the cost-benefit upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache import Cache, GreedyDualCache, LfuCache, LruCache
from ..netmodel import (
    TIER_COOP_P2P,
    TIER_COOP_PROXY,
    TIER_LOCAL_P2P,
    TIER_LOCAL_PROXY,
    TIER_SERVER,
)
from ..overlay import Dht, IdSpace, Overlay
from ..workload import Trace, object_url
from .config import SimulationConfig
from .directory import LookupDirectory, make_directory
from .simulator import CachingScheme

__all__ = ["HierGdScheme"]


@dataclass
class _ClusterState:
    """Everything one proxy + its P2P client cache carries at runtime."""

    proxy: Cache
    clients: list[Cache]
    overlay: Overlay
    dht: Dht
    idx_of_node: dict[int, int]
    node_of_idx: list[int]
    directory: LookupDirectory
    #: Ground truth: objects currently stored somewhere in the P2P cache.
    p2p_present: set[int] = field(default_factory=set)
    #: Owner-side diversion pointers: owner idx -> {obj -> holder idx}.
    pointers: dict[int, dict[int, int]] = field(default_factory=dict)
    #: PAST-style extra copies: obj -> replica holder idxs (primary excluded).
    replicas: dict[int, set[int]] = field(default_factory=dict)
    #: Last retrieval cost per object (greedy-dual's cost input).
    costs: dict[int, float] = field(default_factory=dict)
    #: Memoised DHT owner per object (overlay is churn-free during a run).
    owner_memo: dict[int, int] = field(default_factory=dict)


class HierGdScheme(CachingScheme):
    """The practical scheme: GD caches + Pastry P2P tier + directories."""

    name = "hier-gd"

    def __init__(self, config: SimulationConfig, traces: list[Trace]) -> None:
        super().__init__(config, traces)
        net = config.network
        self._t_server = net.t_server
        self._t_coop = net.t_coop
        self._t_p2p = net.t_p2p
        self._msg: dict[str, int] = {
            "passdowns": 0,
            "piggybacked_destages": 0,
            "dedicated_destage_connections": 0,
            "store_receipts": 0,
            "diversions": 0,
            "client_evictions": 0,
            "p2p_lookups": 0,
            "push_requests": 0,
            "directory_false_positives": 0,
            "replicas_stored": 0,
        }
        space = IdSpace(b=config.pastry_b)
        self.states: list[_ClusterState] = []
        for ci, sizing in enumerate(self.sizings):
            overlay = Overlay(space=space, leaf_size=config.leaf_set_size)
            node_of_idx: list[int] = []
            idx_of_node: dict[int, int] = {}
            for k in range(sizing.n_clients):
                node = overlay.add_named(f"cluster{ci}/cache{k}")
                node_of_idx.append(node.node_id)
                idx_of_node[node.node_id] = k
            state = _ClusterState(
                proxy=self._make_cache(sizing.proxy_size),
                clients=[
                    self._make_cache(sizing.client_size)
                    for _ in range(sizing.n_clients)
                ],
                overlay=overlay,
                dht=Dht(overlay, hop_sample_rate=config.hop_sample_rate),
                idx_of_node=idx_of_node,
                node_of_idx=node_of_idx,
                directory=make_directory(
                    config.directory,
                    capacity=max(1, sizing.p2p_size),
                    fp_rate=config.bloom_fp_rate,
                ),
            )
            self.states.append(state)

    def _make_cache(self, capacity: int) -> Cache:
        """Local replacement policy per :attr:`SimulationConfig.hiergd_policy`.

        The default is greedy-dual (the algorithm's namesake); LRU and
        LFU exist to measure the paper's §3 claim that GD's implicit
        coordination beats both.
        """
        policy = self.config.hiergd_policy
        if policy == "gd":
            return GreedyDualCache(capacity, default_cost=self._t_server)
        if policy == "lru":
            return LruCache(capacity)
        return LfuCache(capacity, reset_on_evict=self.config.lfu_reset_on_evict)

    # -- DHT placement ------------------------------------------------------

    def _owner(self, state: _ClusterState, obj: int) -> int:
        """Client index of the DHT owner of ``obj`` in this cluster."""
        idx = state.owner_memo.get(obj)
        if idx is None:
            object_id = state.dht.object_id(object_url(obj))
            idx = state.idx_of_node[state.dht.owner(object_id)]
            state.owner_memo[obj] = idx
        return idx

    def _locate(self, state: _ClusterState, obj: int) -> int | None:
        """Actual holder of ``obj``: owner, divertee, or a live replica."""
        owner = self._owner(state, obj)
        if state.clients[owner].contains(obj):
            return owner
        holder = state.pointers.get(owner, {}).get(obj)
        if holder is not None and state.clients[holder].contains(obj):
            return holder
        reps = state.replicas.get(obj)
        if reps:
            for idx in list(reps):
                if state.clients[idx].contains(obj):
                    return idx
                reps.discard(idx)  # lazily drop dead replica entries
            if not reps:
                del state.replicas[obj]
        return None

    # -- Figure 1: pass-down with object diversion -----------------------------

    def _pass_down(self, state: _ClusterState, obj: int) -> None:
        """Destage a proxy-evicted object into the P2P client cache."""
        self._msg["passdowns"] += 1
        if self.config.piggyback:
            self._msg["piggybacked_destages"] += 1
        else:
            self._msg["dedicated_destage_connections"] += 1

        cost = state.costs.get(obj, self._t_server)
        holder = self._locate(state, obj)
        if holder is not None:
            # Already stored (e.g. destaged before and later promoted back
            # up): refresh its greedy-dual credit instead of duplicating.
            state.clients[holder].lookup(obj)
            return

        owner_idx = self._owner(state, obj)
        owner_cache = state.clients[owner_idx]

        # (3)-(5): free space at the destination — store directly.
        if owner_cache.free_space >= 1:
            owner_cache.insert(obj, cost=cost)
            self._record_store(state, obj)
            self._replicate(state, obj, cost, primary_idx=owner_idx)
            return

        # (7)-(10): object diversion to a leaf-set member with free space.
        if self.config.object_diversion:
            divertee = self._pick_divertee(state, owner_idx)
            if divertee is not None:
                state.clients[divertee].insert(obj, cost=cost)
                state.pointers.setdefault(owner_idx, {})[obj] = divertee
                self._msg["diversions"] += 1
                self._record_store(state, obj)
                self._replicate(state, obj, cost, primary_idx=divertee)
                return

        # (12)-(14): replacement at the destination; its eviction d2 is
        # simply discarded (§3) after notifying the proxy's directory.
        evicted = owner_cache.insert(obj, cost=cost)
        stored = True
        for d2 in evicted:
            if d2 == obj:
                stored = False  # zero-capacity client caches reject
                continue
            self._on_client_eviction(state, owner_idx, d2)
        if stored:
            self._record_store(state, obj)
            self._replicate(state, obj, cost, primary_idx=owner_idx)

    def _replicate(self, state: _ClusterState, obj: int, cost: float, primary_idx: int) -> None:
        """Best-effort PAST-style replication in the owner's leaf set.

        Extra copies (``p2p_replicas - 1``) go to the leaf-set members
        with free space — never displacing cached objects, so replication
        costs no capacity under pressure, only spare space.  Replicas are
        availability insurance: under client churn an object survives as
        long as one copy does (see :mod:`repro.core.churn`).
        """
        extra = self.config.p2p_replicas - 1
        if extra <= 0:
            return
        owner_idx = self._owner(state, obj)
        owner_node = state.overlay.node(state.node_of_idx[owner_idx])
        existing = state.replicas.get(obj, set())
        for leaf in owner_node.leaves.members():
            if extra <= 0:
                break
            idx = state.idx_of_node[leaf]
            if idx == primary_idx or idx in existing:
                continue
            cache = state.clients[idx]
            if cache.free_space >= 1 and not cache.contains(obj):
                cache.insert(obj, cost=cost)
                state.replicas.setdefault(obj, set()).add(idx)
                self._msg["replicas_stored"] += 1
                extra -= 1

    def _pick_divertee(self, state: _ClusterState, owner_idx: int) -> int | None:
        """Leaf-set member with the most free space (storage balancing)."""
        owner_node = state.overlay.node(state.node_of_idx[owner_idx])
        best: int | None = None
        best_free = 0
        for leaf in owner_node.leaves.members():
            idx = state.idx_of_node[leaf]
            free = state.clients[idx].free_space
            if free > best_free:
                best, best_free = idx, free
        return best

    def _record_store(self, state: _ClusterState, obj: int) -> None:
        """Store receipt: destination confirms, proxy updates directory."""
        self._msg["store_receipts"] += 1
        if obj not in state.p2p_present:
            state.p2p_present.add(obj)
            state.directory.add(obj)

    def _on_client_eviction(self, state: _ClusterState, holder_idx: int, obj: int) -> None:
        """Eviction notice: clean pointers/replicas and the directory.

        With replication, the object only leaves the directory when its
        *last* copy dies — a surviving replica keeps it reachable via
        :meth:`_locate`.
        """
        self._msg["client_evictions"] += 1
        owner = self._owner(state, obj)
        if owner != holder_idx:
            ptrs = state.pointers.get(owner)
            if ptrs and ptrs.get(obj) == holder_idx:
                del ptrs[obj]
        reps = state.replicas.get(obj)
        if reps:
            reps.discard(holder_idx)
            if not reps:
                del state.replicas[obj]
        if obj in state.p2p_present and self._locate(state, obj) is None:
            state.p2p_present.discard(obj)
            state.directory.remove(obj)

    # -- proxy-side insert (GD on each fetched object) -------------------------

    def _proxy_insert(self, state: _ClusterState, obj: int, cost: float) -> None:
        state.costs[obj] = cost
        evicted = state.proxy.insert(obj, cost=cost)
        for d1 in evicted:
            if d1 != obj:
                self._pass_down(state, d1)

    # -- request path -----------------------------------------------------------

    def process(self, cluster: int, client: int, obj: int) -> str:
        state = self.states[cluster]
        # 1. Local proxy cache (greedy-dual bookkeeping on hit).
        if state.proxy.lookup(obj):
            return TIER_LOCAL_PROXY

        # 2. Own P2P client cache, via the lookup directory.
        if obj in state.directory:
            self._msg["p2p_lookups"] += 1
            holder = self._locate(state, obj)
            if holder is not None:
                state.clients[holder].lookup(obj)  # GD credit refresh
                if self.config.promote_on_p2p_hit:
                    self._proxy_insert(state, obj, cost=self._t_p2p)
                return TIER_LOCAL_P2P
            # Bloom false positive: a wasted LAN round into the overlay.
            self._msg["directory_false_positives"] += 1
            self.add_extra_latency(self._t_p2p)

        # 3. Cooperating proxies: their proxy caches first (cheaper) ...
        for other, other_state in enumerate(self.states):
            if other != cluster and other_state.proxy.contains(obj):
                self._proxy_insert(state, obj, cost=self._t_coop)
                return TIER_COOP_PROXY

        # ... then their P2P client caches through the push protocol.
        for other, other_state in enumerate(self.states):
            if other == cluster or obj not in other_state.directory:
                continue
            self._msg["push_requests"] += 1
            holder = self._locate(other_state, obj)
            if holder is not None:
                other_state.clients[holder].lookup(obj)
                self._proxy_insert(state, obj, cost=self._t_coop + self._t_p2p)
                return TIER_COOP_P2P
            self._msg["directory_false_positives"] += 1
            self.add_extra_latency(self._t_coop + self._t_p2p)

        # 4. Origin server.
        self._proxy_insert(state, obj, cost=self._t_server)
        return TIER_SERVER

    # -- reporting ------------------------------------------------------------------

    def finalize(self) -> tuple[dict[str, int], dict[str, float]]:
        extras: dict[str, float] = {"extra_latency": self.extra_latency}
        total_msgs = sum(s.overlay.stats.messages for s in self.states)
        total_hops = sum(s.overlay.stats.total_hops for s in self.states)
        if total_msgs:
            extras["mean_pastry_hops"] = total_hops / total_msgs
        extras["directory_bytes"] = float(
            sum(s.directory.memory_bytes() for s in self.states)
        )
        extras["p2p_objects"] = float(sum(len(s.p2p_present) for s in self.states))
        return dict(self._msg), extras
