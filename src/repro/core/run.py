"""High-level entry points: generate workloads, run schemes, compute gains.

This is the layer the examples and the benchmark harness talk to::

    cfg = SimulationConfig()
    traces = generate_workloads(cfg, seed=1)
    results = run_all_schemes(cfg, traces)
    gains = gains_vs_nc(results)

Traces are generated once per workload configuration and shared across
schemes (the paper compares schemes on *the same* trace), so a sweep
over schemes costs one workload generation.
"""

from __future__ import annotations

from ..perf.profiling import record_scheme_ops
from ..protocol.transport import Transport
from ..workload import Trace, generate_cluster_traces
from .config import SimulationConfig
from .metrics import SchemeResult, latency_gain
from .schemes import SCHEME_REGISTRY

__all__ = [
    "available_schemes",
    "generate_workloads",
    "run_scheme",
    "run_all_schemes",
    "gains_vs_nc",
]


def available_schemes() -> list[str]:
    """Registry names in the paper's presentation order."""
    return list(SCHEME_REGISTRY)


def generate_workloads(config: SimulationConfig, seed: int = 0) -> list[Trace]:
    """One statistically identical trace per client cluster (§5.1)."""
    return generate_cluster_traces(config.workload, config.n_proxies, seed=seed)


def run_scheme(
    name: str,
    config: SimulationConfig,
    traces: list[Trace] | None = None,
    seed: int = 0,
    transport: Transport | None = None,
) -> SchemeResult:
    """Simulate one scheme; generates the workload if none is supplied.

    ``transport`` optionally replaces the scheme's base transport with a
    custom stack (e.g. an observability layer); ``None`` keeps the plain
    always-succeeds carrier.
    """
    try:
        scheme_cls = SCHEME_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; available: {', '.join(SCHEME_REGISTRY)}"
        ) from None
    if traces is None:
        traces = generate_workloads(config, seed=seed)
    scheme = scheme_cls(config, traces, transport=transport)
    result = scheme.run()
    # Feeds repro.perf's op-counter collection; a no-op when inactive.
    record_scheme_ops(name, scheme, result)
    return result


def run_all_schemes(
    config: SimulationConfig,
    traces: list[Trace] | None = None,
    schemes: list[str] | None = None,
    seed: int = 0,
) -> dict[str, SchemeResult]:
    """Run several schemes over the same workload; keyed by scheme name."""
    if traces is None:
        traces = generate_workloads(config, seed=seed)
    names = schemes if schemes is not None else available_schemes()
    return {name: run_scheme(name, config, traces) for name in names}


def gains_vs_nc(results: dict[str, SchemeResult]) -> dict[str, float]:
    """Latency gain of every scheme vs the NC baseline (must be present)."""
    if "nc" not in results:
        raise KeyError("results must include the 'nc' baseline")
    baseline = results["nc"]
    return {
        name: latency_gain(res, baseline)
        for name, res in results.items()
        if name != "nc"
    }
