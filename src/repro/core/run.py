"""High-level entry points: generate workloads, run schemes, compute gains.

This is the layer the examples and the benchmark harness talk to::

    cfg = SimulationConfig()
    traces = generate_workloads(cfg, seed=1)
    results = run_all_schemes(cfg, traces)
    gains = gains_vs_nc(results)

Traces are generated once per workload configuration and shared across
schemes (the paper compares schemes on *the same* trace), so a sweep
over schemes costs one workload generation.
"""

from __future__ import annotations

from ..perf.profiling import record_scheme_ops
from ..protocol.trace import active_trace_recorder
from ..protocol.transport import Transport
from ..workload import Trace, generate_cluster_traces
from .config import SimulationConfig
from .metrics import SchemeResult, latency_gain
from .schemes import SCHEME_REGISTRY

__all__ = [
    "available_schemes",
    "generate_workloads",
    "run_scheme",
    "run_all_schemes",
    "gains_vs_nc",
    "with_backend",
]


def available_schemes() -> list[str]:
    """Registry names in the paper's presentation order."""
    return list(SCHEME_REGISTRY)


def generate_workloads(config: SimulationConfig, seed: int = 0) -> list[Trace]:
    """One statistically identical trace per client cluster (§5.1)."""
    return generate_cluster_traces(config.workload, config.n_proxies, seed=seed)


def with_backend(transport: Transport, backend: str) -> Transport:
    """Wrap a finished stack in the selected execution backend.

    ``"sync"`` returns the stack unchanged; ``"async"`` wraps it
    outermost in an :class:`~repro.protocol.aio.AsyncTransport` on the
    deterministic simulated clock, so the same run is driven through the
    awaitable ladder path with byte-identical results (the async
    equivalence gate).
    """
    if backend == "async":
        from ..protocol.aio import AsyncTransport

        return AsyncTransport(transport)
    if backend != "sync":
        raise ValueError(f"unknown backend {backend!r}; expected sync or async")
    return transport


def run_scheme(
    name: str,
    config: SimulationConfig,
    traces: list[Trace] | None = None,
    seed: int = 0,
    transport: Transport | None = None,
    backend: str = "sync",
    shards: int = 1,
) -> SchemeResult:
    """Simulate one scheme; generates the workload if none is supplied.

    ``shards > 1`` hands the run to the multi-process engine
    (:func:`repro.shard.run_scheme_sharded`): clusters are dealt over
    worker processes which regenerate their own traces from ``seed``, so
    pre-generated ``traces``, a custom ``transport`` and the async
    backend cannot be combined with sharding.  ``shards=1`` is this
    function, unchanged.

    ``transport`` optionally replaces the scheme's base transport with a
    custom stack (e.g. an observability layer, or a
    :class:`~repro.protocol.transport.FaultTransport` whose plan carries
    per-link :class:`~repro.protocol.policy.RetryPolicy` strategies);
    ``None`` keeps the plain always-succeeds carrier.
    ``backend="async"`` drives the same stack through
    :class:`~repro.protocol.aio.AsyncTransport` on the simulated clock —
    results stay byte-identical to the synchronous path.

    Inside a :func:`repro.protocol.trace.recording_traces` block the
    run's transport (supplied or base) is wrapped in a recording layer
    and the wire-level exchange trace lands in the recorder's directory.
    ``seed`` names the trace seed in the recording header: callers that
    pass pre-generated ``traces`` must pass the seed those traces were
    generated from, or the recording will not replay.
    """
    try:
        scheme_cls = SCHEME_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; available: {', '.join(SCHEME_REGISTRY)}"
        ) from None
    if shards > 1:
        if traces is not None:
            raise ValueError(
                "sharded workers regenerate traces from the seed; "
                "pass traces=None with shards > 1"
            )
        if transport is not None or backend != "sync":
            raise ValueError(
                "custom transports / the async backend are single-process "
                "features; use shards=1"
            )
        from ..shard import run_scheme_sharded

        return run_scheme_sharded(name, config, seed=seed, shards=shards)
    if traces is None:
        traces = generate_workloads(config, seed=seed)
    recorder = active_trace_recorder()
    recording = None
    if recorder is not None:
        base = Transport(config.network) if transport is None else transport
        transport = recording = recorder.open(name, config, seed, None, base)
    if backend != "sync":
        transport = with_backend(
            Transport(config.network) if transport is None else transport, backend
        )
    scheme = scheme_cls(config, traces, transport=transport)
    if recording is not None:
        recording.attach(scheme)
    result = None
    try:
        result = scheme.run()
    finally:
        if recording is not None:
            # A crashed run seals an *incomplete* trace (result=None).
            recorder.close(recording, result)
    # Feeds repro.perf's op-counter collection; a no-op when inactive.
    record_scheme_ops(name, scheme, result)
    return result


def run_all_schemes(
    config: SimulationConfig,
    traces: list[Trace] | None = None,
    schemes: list[str] | None = None,
    seed: int = 0,
) -> dict[str, SchemeResult]:
    """Run several schemes over the same workload; keyed by scheme name."""
    if traces is None:
        traces = generate_workloads(config, seed=seed)
    names = schemes if schemes is not None else available_schemes()
    return {name: run_scheme(name, config, traces) for name in names}


def gains_vs_nc(results: dict[str, SchemeResult]) -> dict[str, float]:
    """Latency gain of every scheme vs the NC baseline (must be present)."""
    if "nc" not in results:
        raise KeyError("results must include the 'nc' baseline")
    baseline = results["nc"]
    return {
        name: latency_gain(res, baseline)
        for name, res in results.items()
        if name != "nc"
    }
