"""Client churn for Hier-GD: node failures and joins during a run.

The paper leans on Pastry for the P2P client cache being "efficient,
scalable, fault-resilient, and self-organizing ... in the presence of
heavy load and network and node failure" (§4.1, §6) but never simulates
failures.  This module adds that experiment: client machines crash (their
browser caches vanish) and new machines join *while the trace replays*.

What failure does to the system (all mechanisms, not abstractions):

* the overlay repairs its routing state — Pastry's leaf sets and
  routing tables, Chord's successor lists and (lazily) fingers
  (:meth:`~repro.overlay.contract.OverlayBackend.fail`) — and DHT
  placement shifts: objectIds owned by the dead cache acquire new
  owners;
* the objects stored on the dead cache are gone, but the proxy's lookup
  directory *does not know yet* — entries go stale.  Repair is lazy, as
  it would be in a real deployment: the next lookup that redirects into
  the P2P cache and finds nothing repairs the entry (and is charged the
  wasted ``Tp2p`` round, same as a Bloom false positive);
* diversion pointers through or to the dead cache dangle and are swept;
* objects whose DHT owner changed remain physically cached at the old
  owner but become unreachable — they age out of the old owner's
  greedy-dual cache naturally (a DHT would *migrate* keys; a cache
  rationally chooses not to copy data on churn and re-fetches instead).

A join shifts placement the same way (keys split toward the newcomer)
without losing data.

Use :class:`HierGdChurnScheme` directly (it is not in the scheme
registry: churn schedules are experiment-specific)::

    events = [ChurnEvent(at_request=5_000, kind="fail", cluster=0, client=3)]
    result = HierGdChurnScheme(config, traces, events).run()
"""

from __future__ import annotations

from dataclasses import dataclass

from ..protocol.transport import Transport
from ..workload import Trace
from .config import SimulationConfig
from .hiergd import HierGdScheme, _ClusterState

__all__ = ["ChurnEvent", "HierGdChurnScheme"]


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change, fired before the ``at_request``-th request.

    ``client`` indexes the cluster's client list for ``kind="fail"``; it
    is ignored for ``kind="join"`` (the newcomer gets the next index).
    """

    at_request: int
    kind: str  # "fail" | "join"
    cluster: int
    client: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("fail", "join"):
            raise ValueError("kind must be 'fail' or 'join'")
        if self.at_request < 0:
            raise ValueError("at_request must be non-negative")


class HierGdChurnScheme(HierGdScheme):
    """Hier-GD under a scheduled client churn workload."""

    name = "hier-gd-churn"

    #: Stale directory entries are the *point* of this experiment: the
    #: directory deliberately diverges from ground truth until a lookup
    #: repairs it, which the fast engine's presence indexes cannot mirror.
    #: Pin the reference engine regardless of ``config.hot_path``.
    _force_reference = True

    def __init__(
        self,
        config: SimulationConfig,
        traces: list[Trace],
        events: list[ChurnEvent],
        transport: Transport | None = None,
    ) -> None:
        super().__init__(config, traces, transport)
        #: Read once: under a fault transport the lazy repair runs through
        #: ``repair()`` (eviction notices are lossy — see ``_locate``).
        self._faulty = self.transport.faulty
        self._in_eviction = False
        for ev in events:
            if not 0 <= ev.cluster < len(self.states):
                raise ValueError(f"event cluster {ev.cluster} out of range")
        self._events = sorted(events, key=lambda e: e.at_request)
        self._next_event = 0
        self._processed = 0
        #: Failed client indices per cluster (their slots stay, dead).
        self._dead: list[set[int]] = [set() for _ in self.states]
        self._msg.update(
            {
                "client_failures": 0,
                "client_joins": 0,
                "objects_lost": 0,
                "directory_repairs": 0,
            }
        )

    # -- event execution -------------------------------------------------

    def _fire_due_events(self) -> None:
        while (
            self._next_event < len(self._events)
            and self._events[self._next_event].at_request <= self._processed
        ):
            ev = self._events[self._next_event]
            self._next_event += 1
            if ev.kind == "fail":
                self._fail_client(ev.cluster, ev.client)
            else:
                self._join_client(ev.cluster)

    def _fail_client(self, cluster: int, client: int) -> None:
        state = self.states[cluster]
        if client in self._dead[cluster]:
            raise ValueError(f"client {client} of cluster {cluster} already failed")
        if not 0 <= client < len(state.clients):
            raise ValueError(f"client {client} out of range")
        self._msg["client_failures"] += 1

        lost = list(state.clients[client].keys())
        self._msg["objects_lost"] += len(lost)

        # The machine is gone: cache contents, pointer table and overlay
        # membership all vanish at once.
        state.clients[client].clear()
        state.pointers.pop(client, None)
        state.overlay.fail(state.node_of_idx[client])
        self._dead[cluster].add(client)
        # DHT placement shifted: the owner memo is stale wholesale.
        state.owner_memo.clear()

        # Dangling diversion pointers and replica entries naming the dead
        # cache are swept (the owners notice their neighbourhood member
        # die through overlay repair).
        for ptrs in state.pointers.values():
            stale = [obj for obj, holder in ptrs.items() if holder == client]
            for obj in stale:
                del ptrs[obj]
        for obj in lost:
            reps = state.replicas.get(obj)
            if reps:
                reps.discard(client)
                if not reps:
                    del state.replicas[obj]
        # Ground truth: an object left the P2P cache only if its *last*
        # copy died (replication keeps it alive otherwise).  The proxy's
        # directory is repaired lazily on failed lookups either way.
        for obj in lost:
            if HierGdScheme._locate(self, state, obj) is None:
                state.p2p_present.discard(obj)

    def _join_client(self, cluster: int) -> None:
        state = self.states[cluster]
        sizing = self.sizings[cluster]
        self._msg["client_joins"] += 1
        idx = len(state.clients)
        node = state.overlay.add_named(f"cluster{cluster}/cache{idx}")
        state.node_of_idx.append(node.node_id)
        state.idx_of_node[node.node_id] = idx
        state.clients.append(self._make_cache(sizing.client_size))
        # Placement shifted toward the newcomer: objects it now owns but
        # does not hold become unreachable at their old holders and are
        # repaired lazily, like after a failure.
        state.owner_memo.clear()

    # -- lazily repaired lookup ---------------------------------------------

    def _locate(
        self, state: _ClusterState, obj: int, owner: int | None = None
    ) -> int | None:
        holder = super()._locate(state, obj, owner)
        if self._faulty:
            # Under a fault transport the repair runs through ``repair()``:
            # the proxy fixing its own directory is local and must not run
            # through the lossy eviction-notice channel.  During eviction
            # handling the locate is only a reachability probe — repairing
            # there would undo the very notice drop being modelled (the
            # proxy can't fix an entry it never learned went stale).
            if self._in_eviction:
                return holder
            if holder is None and obj in state.p2p_present:
                state.p2p_present.discard(obj)
            if holder is None and obj in state.directory:
                state.directory.repair(obj)
                self._msg["directory_repairs"] += 1
            return holder
        if holder is None and obj in state.p2p_present:
            # Reachability lost through churn (owner moved): the object
            # physically exists but the DHT can no longer find it.  Treat
            # it as lost — it will age out of its old holder's cache.
            state.p2p_present.discard(obj)
        if holder is None and obj in state.directory:
            state.directory.remove(obj)
            self._msg["directory_repairs"] += 1
        return holder

    def _on_client_eviction(self, state: _ClusterState, holder_idx: int, obj: int) -> None:
        # Flagged so the faulty ``_locate`` branch treats the embedded
        # reachability probe as read-only; harmless in plain runs (the
        # flag is only read under a fault transport).
        self._in_eviction = True
        try:
            super()._on_client_eviction(state, holder_idx, obj)
        finally:
            self._in_eviction = False

    # -- request path ----------------------------------------------------------

    def process(self, cluster: int, client: int, obj: int) -> str:
        self._fire_due_events()
        self._processed += 1
        # Requests from failed clients still arrive (users move to live
        # machines); map them onto a live client for piggyback realism.
        if client in self._dead[cluster]:
            live = (c for c in range(len(self.states[cluster].clients))
                    if c not in self._dead[cluster])
            client = next(live, 0)
        return super().process(cluster, client, obj)

    def finalize(self) -> tuple[dict[str, int], dict[str, float]]:
        messages, extras = super().finalize()
        extras["live_clients"] = float(
            sum(
                len(s.clients) - len(dead)
                for s, dead in zip(self.states, self._dead)
            )
        )
        return messages, extras
