"""Incrementally-maintained cross-cluster presence indexes.

The reference engine answers "which cooperating cluster holds object X?"
with an O(n_proxies) scan per miss — every `ScScheme`/`ScEcScheme` miss
probes each remote cache, and Hier-GD's steps 3–4 scan remote proxies
and directories.  The hot-path engine inverts that: a
:class:`PresenceIndex` maps each object to the set of clusters currently
holding it, updated incrementally at insert/evict time, so a miss costs
one dict probe.

Equivalence with the scan is exact because the scan visits clusters in
ascending index order, skipping the requester: the scan finds
:meth:`PresenceIndex.first_holder` (the smallest holder index other than
the requester), and issues :func:`probes_to` probe messages on the way —
so tier counts *and* message accounting stay byte-identical.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["PresenceIndex", "probes_to"]

_EMPTY: frozenset[int] = frozenset()


class PresenceIndex:
    """object → set of cluster indexes currently holding a copy."""

    __slots__ = ("_holders",)

    def __init__(self) -> None:
        self._holders: dict[Hashable, set[int]] = {}

    def add(self, obj: Hashable, cluster: int) -> None:
        s = self._holders.get(obj)
        if s is None:
            self._holders[obj] = {cluster}
        else:
            s.add(cluster)

    def discard(self, obj: Hashable, cluster: int) -> None:
        s = self._holders.get(obj)
        if s is not None:
            s.discard(cluster)
            if not s:
                del self._holders[obj]

    def holders(self, obj: Hashable) -> Iterable[int]:
        return self._holders.get(obj, _EMPTY)

    def first_holder(self, obj: Hashable, exclude: int) -> int | None:
        """Smallest holder index != ``exclude`` — what the ascending
        cluster scan would find first — or None."""
        s = self._holders.get(obj)
        if not s:
            return None
        best = None
        for c in s:
            if c != exclude and (best is None or c < best):
                best = c
        return best

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._holders

    def __len__(self) -> int:
        return len(self._holders)

    def as_dict(self) -> dict[Hashable, frozenset[int]]:
        """Snapshot for invariant tests (compare against brute force)."""
        return {obj: frozenset(s) for obj, s in self._holders.items()}


def probes_to(first: int | None, exclude: int, n: int) -> int:
    """Probe messages the ascending scan (skipping ``exclude``) issues.

    ``first`` is the scan's hit (from :meth:`PresenceIndex.first_holder`);
    None means the scan misses everywhere and probes all ``n - 1`` peers.
    The hit probe itself is counted, matching the reference loops.
    """
    if first is None:
        return n - 1
    return first if first > exclude else first + 1
