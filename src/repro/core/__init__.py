"""Core simulation layer: configuration, engine, schemes, metrics.

- :mod:`repro.core.config` — :class:`SimulationConfig` (paper §5.1 defaults).
- :mod:`repro.core.simulator` — the trace-replay engine.
- :mod:`repro.core.schemes` — NC, SC, FC and their -EC variants.
- :mod:`repro.core.hiergd` — the mechanism-level Hier-GD scheme (§§3-4).
- :mod:`repro.core.directory` — Exact / Bloom lookup directories (§4.2).
- :mod:`repro.core.metrics` — results and the latency-gain metric.
- :mod:`repro.core.run` — one-call entry points.
"""

from .churn import ChurnEvent, HierGdChurnScheme
from .config import ClusterSizing, NetworkConfig, SimulationConfig
from .directory import BloomDirectory, ExactDirectory, LookupDirectory, make_directory
from .hiergd import HierGdScheme
from .metrics import SchemeResult, byte_hit_rate, byte_latency_gain, latency_gain
from .run import (
    available_schemes,
    gains_vs_nc,
    generate_workloads,
    run_all_schemes,
    run_scheme,
)
from .simulator import CachingScheme

__all__ = [
    "ChurnEvent",
    "HierGdChurnScheme",
    "ClusterSizing",
    "NetworkConfig",
    "SimulationConfig",
    "BloomDirectory",
    "ExactDirectory",
    "LookupDirectory",
    "make_directory",
    "HierGdScheme",
    "SchemeResult",
    "latency_gain",
    "byte_hit_rate",
    "byte_latency_gain",
    "available_schemes",
    "gains_vs_nc",
    "generate_workloads",
    "run_all_schemes",
    "run_scheme",
    "CachingScheme",
]
