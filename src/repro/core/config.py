"""Simulation configuration: the paper's experiment parameters in one place.

Defaults follow §5.1 of the paper:

* workload — ProWGen, 10⁶ requests over 10⁴ objects, 50 % one-timers,
  Zipf α = 0.7 (see :class:`repro.workload.ProWGenConfig`);
* network — ``Ts/Tc = 10``, ``Ts/Tl = 20``, ``Tp2p/Tl = 1.4``;
* topology — a two-proxy cluster; 100 clients per client cluster;
* sizing — every cache size is a fraction of the **infinite cache size**
  (distinct objects referenced more than once, computed per cluster):
  each client contributes 0.1 % ⇒ the P2P client cache is 10 % with the
  default 100-client cluster; the proxy cache fraction is the x-axis of
  every figure (swept 10 %–100 %).

:class:`SimulationConfig` is frozen; sweeps use :meth:`SimulationConfig.
with_changes` to derive variants, so a config value can never drift
mid-experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..netmodel import NetworkConfig
from ..workload import ProWGenConfig, Trace

__all__ = ["SimulationConfig", "ClusterSizing", "NetworkConfig"]


@dataclass(frozen=True)
class ClusterSizing:
    """Concrete per-cluster cache sizes derived from a trace.

    All capacities share one denomination: *objects* under the paper's
    equal-size assumption, *bytes* when the trace carries per-object
    sizes (:attr:`by_bytes`); they are fractions of the matching
    infinite-cache-size measure either way, so the x-axis of every
    figure keeps its meaning.
    """

    infinite_cache_size: int
    proxy_size: int
    client_size: int
    n_clients: int
    #: True when the sizes above are denominated in bytes.
    by_bytes: bool = False

    @property
    def p2p_size(self) -> int:
        """Aggregate P2P client-cache capacity (the -EC client tier)."""
        return self.client_size * self.n_clients


@dataclass(frozen=True)
class SimulationConfig:
    """Every knob of one simulation run (see module docstring)."""

    workload: ProWGenConfig = field(default_factory=ProWGenConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)

    #: Number of cooperating proxies (client clusters). Paper default: 2.
    n_proxies: int = 2
    #: Proxy cache size as a fraction of the infinite cache size (x-axis).
    proxy_cache_fraction: float = 0.5
    #: Each client's cooperative-cache share of the infinite cache size.
    client_cache_fraction: float = 0.001

    # -- Hier-GD mechanism knobs (§4) -------------------------------------
    #: Lookup directory representation: "exact" or "bloom".
    directory: str = "exact"
    #: Target false-positive rate for the Bloom directory.
    bloom_fp_rate: float = 0.01
    #: Structured overlay backend federating each client cluster:
    #: "pastry" (the paper's choice, §4.1) or "chord" (the bake-off
    #: alternative).  Backend-specific knobs below are validated only
    #: for the selected backend.
    overlay: str = "pastry"
    #: [pastry] leaf-set size l (paper: typical value 16).
    leaf_set_size: int = 16
    #: [pastry] digit-width parameter b (paper: log_2b N routing).
    pastry_b: int = 4
    #: [chord] successor-list length r (repair/replica neighbourhood).
    chord_successors: int = 16
    #: Object diversion within the leaf set (§4.3). Ablation knob.
    object_diversion: bool = True
    #: Piggyback destaged objects on HTTP responses (§4.4). Ablation knob.
    piggyback: bool = True
    #: Re-cache an object at the proxy after a P2P hit ("the local proxy
    #: enforces the greedy-dual algorithm upon each fetched object", §3).
    promote_on_p2p_hit: bool = True
    #: Sample 1-in-N DHT routings for hop statistics (0 = placement only).
    hop_sample_rate: int = 64
    #: Fraction of each run excluded from statistics while caches warm.
    #: The paper simulates cold caches (0.0); warmup isolates steady-state
    #: behaviour for method studies.
    warmup_fraction: float = 0.0
    #: LFU counting mode for NC/SC and the unified -EC caches:
    #: "perfect" keeps reference counts across evictions (upper-bound
    #: reading of §2), "in-cache" restarts counts on re-insertion.
    lfu_mode: str = "perfect"
    #: Local replacement policy inside Hier-GD (proxy and client caches).
    #: The paper chooses greedy-dual because it beats LRU and LFU
    #: (Korupolu & Dahlin, §3); "lru"/"lfu" exist to measure that claim.
    hiergd_policy: str = "gd"
    #: Credit model for the greedy-dual caches when object sizes vary:
    #: "gds" (GreedyDual-Size, credit L + cost/size — Cao & Irani) or
    #: "gd" (classic greedy-dual, credit L + cost, size-blind credit
    #: with byte-accurate capacity).  Indistinguishable at unit sizes.
    gd_cost_model: str = "gds"
    #: Copies kept per destaged object in the P2P client cache (PAST-style
    #: leaf-set replication; the paper keeps 1).  Extra replicas are
    #: best-effort — stored only where free space exists — and pay off as
    #: availability under client churn.
    p2p_replicas: int = 1
    #: Request-loop engine: "fast" (presence indexes + precomputed DHT
    #: placement, the default) or "reference" (the original per-miss scan
    #: loops and per-object owner memoisation).  Results are identical —
    #: asserted by the hot-path equivalence suite — except that the two
    #: engines sample different keys for ``mean_pastry_hops``.
    hot_path: str = "fast"

    def __post_init__(self) -> None:
        if self.n_proxies < 1:
            raise ValueError("n_proxies must be >= 1")
        if not 0 < self.proxy_cache_fraction <= 1.0:
            raise ValueError("proxy_cache_fraction must be in (0, 1]")
        if not 0 <= self.client_cache_fraction <= 1.0:
            raise ValueError("client_cache_fraction must be in [0, 1]")
        if self.directory not in ("exact", "bloom"):
            raise ValueError("directory must be 'exact' or 'bloom'")
        if not 0 < self.bloom_fp_rate < 1:
            raise ValueError("bloom_fp_rate must be in (0, 1)")
        if self.overlay not in ("pastry", "chord"):
            raise ValueError("overlay must be 'pastry' or 'chord'")
        if self.overlay == "pastry":
            if self.leaf_set_size < 2 or self.leaf_set_size % 2:
                raise ValueError("leaf_set_size must be an even integer >= 2")
            if self.pastry_b not in (1, 2, 4, 8):
                raise ValueError("pastry_b must be one of 1, 2, 4, 8")
        elif self.chord_successors < 1:
            raise ValueError("chord_successors must be >= 1")
        if self.hop_sample_rate < 0:
            raise ValueError("hop_sample_rate must be >= 0")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.lfu_mode not in ("perfect", "in-cache"):
            raise ValueError("lfu_mode must be 'perfect' or 'in-cache'")
        if self.hiergd_policy not in ("gd", "lru", "lfu"):
            raise ValueError("hiergd_policy must be 'gd', 'lru' or 'lfu'")
        if self.gd_cost_model not in ("gds", "gd"):
            raise ValueError("gd_cost_model must be 'gds' or 'gd'")
        if self.p2p_replicas < 1:
            raise ValueError("p2p_replicas must be >= 1")
        if self.hot_path not in ("fast", "reference"):
            raise ValueError("hot_path must be 'fast' or 'reference'")

    @property
    def lfu_reset_on_evict(self) -> bool:
        """LfuCache constructor flag matching :attr:`lfu_mode`."""
        return self.lfu_mode == "in-cache"

    @property
    def clients_per_cluster(self) -> int:
        return self.workload.n_clients

    def with_changes(self, **changes: Any) -> "SimulationConfig":
        """Derived config for parameter sweeps (frozen-safe ``replace``)."""
        return replace(self, **changes)

    def sizing_for(self, trace: Trace) -> ClusterSizing:
        """Concrete cache sizes for one cluster, per the paper's rules.

        All sizes are relative to *this trace's* infinite cache size; the
        client cache is at least one object whenever the fraction is
        non-zero (a zero-size client cache would silently disable the P2P
        tier at tiny scales).

        When the trace carries per-object sizes, every capacity is
        denominated in *bytes* of the byte-valued infinite cache size
        (``trace.infinite_cache_bytes``) instead of object counts — the
        same fractions, the same sweep semantics, byte-accurate storage.
        """
        sized = getattr(trace, "sizes", None) is not None
        ics = trace.infinite_cache_bytes if sized else trace.infinite_cache_size
        proxy = max(1, round(self.proxy_cache_fraction * ics))
        client = 0
        if self.client_cache_fraction > 0:
            client = max(1, round(self.client_cache_fraction * ics))
        return ClusterSizing(
            infinite_cache_size=ics,
            proxy_size=proxy,
            client_size=client,
            n_clients=self.clients_per_cluster,
            by_bytes=sized,
        )

    def describe(self) -> str:
        """One-line human-readable summary for logs and reports."""
        return (
            f"P={self.n_proxies} proxies, S={self.proxy_cache_fraction:.0%} of ICS, "
            f"{self.clients_per_cluster} clients x {self.client_cache_fraction:.2%}, "
            f"Ts/Tc={self.network.ts_over_tc:g}, Ts/Tl={self.network.ts_over_tl:g}, "
            f"workload={self.workload.n_requests} reqs / {self.workload.n_objects} objs, "
            f"alpha={self.workload.alpha:g}, stack={self.workload.stack_fraction:.0%}"
        )
