"""Result containers and the paper's evaluation metric.

The paper's single headline metric is **latency gain** (§5.1): the
relative reduction in mean access latency with respect to the NC
baseline, ``1 − L_scheme / L_NC``.  Every figure plots it, so
:func:`latency_gain` is the quantity the whole benchmark harness reports.

:class:`SchemeResult` additionally keeps per-tier hit counts (where each
request was served) and the Hier-GD protocol's message accounting
(piggybacks, diversions, pushes, Bloom false positives, Pastry hops) so
the design-issue discussion of §4 is quantifiable, not just narrated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netmodel import ALL_TIERS

# Canonical home is the protocol layer (the counters are emitted by the
# fault transport); re-exported here because results are where they land.
from ..protocol.messages import FAULT_COUNTERS

__all__ = [
    "FAULT_COUNTERS",
    "SchemeResult",
    "latency_gain",
    "byte_hit_rate",
    "byte_latency_gain",
]


@dataclass
class SchemeResult:
    """Outcome of simulating one scheme over one workload."""

    scheme: str
    n_requests: int
    total_latency: float
    #: Requests served per tier (keys from :data:`repro.netmodel.ALL_TIERS`).
    tier_counts: dict[str, int] = field(default_factory=dict)
    #: Protocol message counters (Hier-GD only; empty for upper bounds).
    messages: dict[str, int] = field(default_factory=dict)
    #: Free-form extras (mean Pastry hops, directory memory, etc.).
    extras: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_requests < 0 or self.total_latency < 0:
            raise ValueError("n_requests and total_latency must be non-negative")
        counted = sum(self.tier_counts.values())
        if self.tier_counts and counted != self.n_requests:
            raise ValueError(
                f"tier counts sum to {counted}, expected {self.n_requests}"
            )
        unknown = set(self.tier_counts) - set(ALL_TIERS)
        if unknown:
            raise ValueError(f"unknown tiers {sorted(unknown)}")

    @property
    def mean_latency(self) -> float:
        """Average client-perceived access latency."""
        return self.total_latency / self.n_requests if self.n_requests else 0.0

    def hit_rate(self, tier: str) -> float:
        """Fraction of requests served from ``tier``."""
        if tier not in ALL_TIERS:
            raise KeyError(f"unknown tier {tier!r}")
        if not self.n_requests:
            return 0.0
        return self.tier_counts.get(tier, 0) / self.n_requests

    @property
    def miss_rate(self) -> float:
        """Fraction of requests that went all the way to the server."""
        return self.hit_rate("server")

    def latency_distribution(self, network) -> list[tuple[float, int]]:
        """Exact latency distribution as sorted ``(latency, count)`` pairs.

        With equal-size objects every request's latency is fully
        determined by its serving tier, so the distribution is exact (no
        sampling).  ``network`` is the :class:`~repro.netmodel.
        NetworkConfig` the run used.
        """
        pairs = [
            (network.latency(tier), count)
            for tier, count in self.tier_counts.items()
        ]
        pairs.sort()
        return pairs

    def percentile(self, p: float, network) -> float:
        """Latency percentile ``p`` (0 < p <= 100) of the distribution.

        Useful beyond the paper's mean-latency metric: tail latency shows
        how often clients still pay the full server round trip.
        """
        if not 0 < p <= 100:
            raise ValueError("p must be in (0, 100]")
        if not self.n_requests:
            return 0.0
        target = p / 100 * self.n_requests
        seen = 0
        for latency, count in self.latency_distribution(network):
            seen += count
            if seen >= target:
                return latency
        return self.latency_distribution(network)[-1][0]

    def fault_summary(self) -> dict[str, int]:
        """The :data:`FAULT_COUNTERS` slice of ``messages`` (zeros when
        the scheme ran without fault injection)."""
        return {key: self.messages.get(key, 0) for key in FAULT_COUNTERS}

    def summary(self) -> str:
        """Compact human-readable report line."""
        tiers = " ".join(
            f"{t}={self.hit_rate(t):.1%}" for t in ALL_TIERS if self.tier_counts.get(t)
        )
        return (
            f"{self.scheme}: mean latency {self.mean_latency:.3f} "
            f"over {self.n_requests} requests ({tiers})"
        )


def latency_gain(result: SchemeResult, baseline: SchemeResult) -> float:
    """The paper's latency gain: ``1 − L_scheme / L_baseline`` (§5.1).

    ``baseline`` is the NC scheme in every figure.  Positive values mean
    the scheme beats NC; the gain is expressed as a fraction (multiply by
    100 for the figures' percent axes).
    """
    if baseline.mean_latency <= 0:
        raise ValueError("baseline mean latency must be positive")
    return 1.0 - result.mean_latency / baseline.mean_latency


def _require_byte_accounting(result: SchemeResult) -> float:
    """Return ``bytes_total`` or explain that the run had sizes off."""
    total = result.extras.get("bytes_total")
    if total is None:
        raise ValueError(
            f"result for {result.scheme!r} carries no byte accounting; "
            "byte metrics require a run with object sizes enabled "
            "(ProWGenConfig.object_sizes != 'off' or a trace with sizes)"
        )
    return total


def byte_hit_rate(result: SchemeResult) -> float:
    """Fraction of response *bytes* served without the origin server.

    The equal-size world only needs the request hit rate; with
    heavy-tailed object sizes the two diverge (small hot objects inflate
    the request hit rate while most bytes still ship from the server),
    so size-aware runs report both.  Computed as
    ``1 − bytes_server / bytes_total`` over the measured (post-warmup)
    window.
    """
    total = _require_byte_accounting(result)
    if total <= 0:
        return 0.0
    return 1.0 - result.extras.get("bytes_server", 0.0) / total


def byte_latency_gain(result: SchemeResult, baseline: SchemeResult) -> float:
    """Byte-weighted analogue of :func:`latency_gain`.

    Weights each request's latency by the bytes it moved before
    averaging, so saving a 10 MB fetch counts 10⁵× a 100 B one — the
    transfer-time reading of the paper's metric once sizes vary.
    Requires both runs to carry byte accounting.
    """
    base_total = _require_byte_accounting(baseline)
    total = _require_byte_accounting(result)
    if base_total <= 0 or total <= 0:
        raise ValueError("byte_latency_gain needs a non-empty measured window")
    base_mean = baseline.extras.get("byte_latency", 0.0) / base_total
    if base_mean <= 0:
        raise ValueError("baseline byte-weighted mean latency must be positive")
    mean = result.extras.get("byte_latency", 0.0) / total
    return 1.0 - mean / base_mean
