"""FC — fully coordinated cooperative caching (the paper's upper bound).

"FC is the fully coordinated form of cooperative caching, where proxies
cooperate both in serving each other's cache misses and in making object
replacement decisions" using "a cost-benefit replacement to minimize the
average access latency of all the clients in the proxy cluster ... based
on the assumption of the perfect frequency knowledge" (§2).

The referenced tech report is unavailable, so the coordination follows
the documented reconstruction (DESIGN.md §§3,5).  The proxy cluster is
one coordinated store of aggregate capacity ``Σ proxy_size``; each
cached *copy* carries the latency it saves the cluster per unit time:

* the **primary** (first) copy of object *o* held at cluster *c*:
  ``value = f_total(o)·(Ts − Tc) + f_c(o)·Tc``
  (every cluster stops paying the server, *c* additionally stops paying
  the co-proxy hop);
* a **duplicate** copy at cluster *q*: ``value = f_q(o)·Tc``
  (only *q*'s accesses improve, from co-proxy to local).

``f`` are perfect per-cluster reference counts from the traces.
Replacement is globally greedy: a new copy is admitted iff its value
exceeds the globally least valuable cached copy, which is then evicted;
when a primary copy dies but duplicates survive, the most-referenced
survivor is promoted to primary (its value gains the ``f_total·(Ts−Tc)``
term).  Cold start is honest: the first access of any object pays the
server no matter what the placement will be.
"""

from __future__ import annotations

from ...cache import HeapDict
from ...netmodel import TIER_COOP_PROXY, TIER_LOCAL_PROXY, TIER_SERVER
from ...protocol.messages import PROXY_FETCH
from ...protocol.transport import Transport
from ...workload import Trace
from ..config import SimulationConfig
from ..simulator import CachingScheme

__all__ = ["FcScheme"]


class FcScheme(CachingScheme):
    """Fully coordinated placement/replacement with perfect frequencies."""

    name = "fc"

    def __init__(
        self,
        config: SimulationConfig,
        traces: list[Trace],
        transport: Transport | None = None,
    ) -> None:
        super().__init__(config, traces, transport)
        if self.transport.faulty:
            # Same scheme, fault semantics from the transport: only the
            # serving path changes, so swap it in per instance and leave
            # the plain ``process`` on the class untouched (hot path).
            self.process = self._process_faulty  # type: ignore[method-assign]
        self._freq = [t.reference_counts() for t in traces]
        self._freq_total = sum(self._freq)
        self.capacity = sum(s.proxy_size for s in self.sizings)
        net = config.network
        self._benefit_remote = net.benefit_first_copy_remote  # Ts - Tc
        self._benefit_local = net.benefit_local_copy  # Tc
        # Copy store: (obj, cluster) -> value density; plus placement.
        # The heap priority is value *per capacity unit* (value/size);
        # at unit sizes that is the raw value, the paper's rule.
        self._copies = HeapDict()
        self._holders: dict[int, set[int]] = {}
        self._primary: dict[int, int] = {}
        self._local: list[set[int]] = [set() for _ in traces]
        self._placement_updates = 0
        #: Capacity units in use (== copy count under unit sizes).
        self._used = 0

    # -- value model -------------------------------------------------------

    def _value(self, obj: int, cluster: int, primary: bool) -> float:
        v = float(self._freq[cluster][obj]) * self._benefit_local
        if primary:
            v += float(self._freq_total[obj]) * self._benefit_remote
        return v

    # -- placement mutations -------------------------------------------------

    def _add_copy(self, obj: int, cluster: int) -> None:
        holders = self._holders.setdefault(obj, set())
        primary = not holders
        holders.add(cluster)
        if primary:
            self._primary[obj] = cluster
        self._local[cluster].add(obj)
        self._placement_updates += 1
        size = self._size_of(obj)
        self._used += size
        self._copies.push((obj, cluster), self._value(obj, cluster, primary) / size)

    def _evict_min(self) -> None:
        (obj, cluster), _density = self._copies.pop_min()
        self._drop_copy(obj, cluster)

    def _drop_copy(self, obj: int, cluster: int) -> None:
        """Bookkeeping for a dying copy (its heap entry already popped,
        or discarded here if a promotion re-pushed it in the meantime)."""
        self._placement_updates += 1
        self._copies.discard((obj, cluster))
        self._used -= self._size_of(obj)
        self._local[cluster].discard(obj)
        holders = self._holders[obj]
        holders.discard(cluster)
        if not holders:
            del self._holders[obj]
            del self._primary[obj]
            return
        if self._primary[obj] == cluster:
            # Promote the most-referenced surviving duplicate to primary.
            new_primary = max(holders, key=lambda q: self._freq[q][obj])
            self._primary[obj] = new_primary
            self._copies.push(
                (obj, new_primary),
                self._value(obj, new_primary, True) / self._size_of(obj),
            )

    def _consider_copy(self, obj: int, cluster: int) -> None:
        """Admit a copy at ``cluster`` if globally worthwhile.

        Size-aware: admission frees min-density incumbents until the new
        copy fits, and aborts (restoring the incumbents untouched) the
        moment an incumbent is at least as dense as the newcomer.  Under
        unit sizes the loop runs at most one iteration against the raw
        copy value — exactly the paper's single-victim rule.
        """
        if obj in self._local[cluster]:
            return
        size = self._size_of(obj)
        if size > self.capacity:
            return
        primary = obj not in self._holders
        if self._used + size <= self.capacity:
            self._add_copy(obj, cluster)
            return
        density = self._value(obj, cluster, primary) / size
        victims: list[tuple[tuple[int, int], float]] = []
        freed = 0
        admit = True
        while self._used - freed + size > self.capacity:
            victim, vdensity = self._copies.peek_min()
            if vdensity >= density:
                admit = False
                break
            self._copies.pop_min()
            victims.append((victim, vdensity))
            freed += self._size_of(victim[0])
        if not admit:
            for key, prio in victims:
                self._copies.push(key, prio)  # rejection leaves no trace
            return
        for (vobj, vcluster), _prio in victims:
            self._drop_copy(vobj, vcluster)
        self._add_copy(obj, cluster)

    # -- request path -------------------------------------------------------------

    def process(self, cluster: int, client: int, obj: int) -> str:
        if obj in self._local[cluster]:
            return TIER_LOCAL_PROXY
        tier = TIER_COOP_PROXY if obj in self._holders else TIER_SERVER
        self._consider_copy(obj, cluster)
        return tier

    def _process_faulty(self, cluster: int, client: int, obj: int) -> str:
        """Serving path under a fault transport.

        The coordinated *placement* is an oracle (perfect frequencies),
        so faults bite only the serving path: a remote hit that cannot
        be fetched within the retry budget falls back to the origin
        server.  The copy-store bookkeeping is unchanged — the object is
        fetched and placed as planned, just from farther away.
        """
        if obj in self._local[cluster]:
            return TIER_LOCAL_PROXY
        if obj in self._holders and self.transport.attempt(PROXY_FETCH):
            tier = TIER_COOP_PROXY
        else:
            tier = TIER_SERVER
        self._consider_copy(obj, cluster)
        return tier

    def finalize(self) -> tuple[dict[str, int], dict[str, float]]:
        """Coordination cost: one update message per placement change."""
        messages = {"placement_updates": self._placement_updates}
        extras: dict[str, float] = {}
        if self.transport.faulty:
            messages.update(self.transport.fault_counters)
            extras["extra_latency"] = self.extra_latency
        return messages, extras
