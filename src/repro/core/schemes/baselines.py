"""NC and SC — the classical schemes without client caches (§2).

* **NC (No Cache Cooperation)** — every proxy runs a private LFU cache;
  a proxy miss always goes to the origin server.  NC is the baseline of
  the paper's latency-gain metric.
* **SC (Simple Cache Cooperation)** — proxies serve each other's misses:
  a proxy that misses locally probes its cooperating proxies and fetches
  from one that holds the object (at ``Tc``), then caches the object
  locally ("once a proxy fetches an object from another proxy, it caches
  the object locally" — duplication allowed, replacement uncoordinated).

Both use LFU replacement per §2, perfect-counting variant (DESIGN.md §5).
"""

from __future__ import annotations

from ...cache import LfuCache
from ...netmodel import TIER_COOP_PROXY, TIER_LOCAL_PROXY, TIER_SERVER
from ...protocol.transport import Transport
from ...workload import Trace
from ..config import SimulationConfig
from ..presence import PresenceIndex, probes_to
from ..simulator import CachingScheme

__all__ = ["NcScheme", "ScScheme"]


class NcScheme(CachingScheme):
    """No cache cooperation: isolated per-proxy LFU caches."""

    name = "nc"

    def __init__(
        self,
        config: SimulationConfig,
        traces: list[Trace],
        transport: Transport | None = None,
    ) -> None:
        super().__init__(config, traces, transport)
        self.caches = [
            LfuCache(s.proxy_size, reset_on_evict=config.lfu_reset_on_evict)
            for s in self.sizings
        ]

    def process(self, cluster: int, client: int, obj: int) -> str:
        hit, _ = self.caches[cluster].lookup_or_insert(obj, size=self._size_of(obj))
        return TIER_LOCAL_PROXY if hit else TIER_SERVER


class ScScheme(CachingScheme):
    """Simple cooperation: serve each other's misses, no coordination.

    Message accounting (for the overhead-vs-benefit discussion): every
    local miss probes the cooperating proxies ICP-style — one probe per
    co-proxy until a hit — and every remote hit costs one fetch.
    """

    name = "sc"

    def __init__(
        self,
        config: SimulationConfig,
        traces: list[Trace],
        transport: Transport | None = None,
    ) -> None:
        super().__init__(config, traces, transport)
        self.caches = [
            LfuCache(s.proxy_size, reset_on_evict=config.lfu_reset_on_evict)
            for s in self.sizings
        ]
        self._fast = config.hot_path == "fast"
        #: object -> clusters caching it; replaces the per-miss probe scan
        #: (see :mod:`repro.core.presence` for the equivalence argument).
        self._presence = PresenceIndex()
        self._probes = 0
        self._coop_fetches = 0

    def process(self, cluster: int, client: int, obj: int) -> str:
        cache = self.caches[cluster]
        if not self._fast:
            return self._process_reference(cache, cluster, obj)
        # Remote probes never touch the local cache, so the fused
        # lookup-or-insert may run first; ``first_holder`` excludes this
        # cluster, making the index update order irrelevant too.
        hit, evicted = cache.lookup_or_insert(obj, size=self._size_of(obj))
        if hit:
            return TIER_LOCAL_PROXY
        presence = self._presence
        first = presence.first_holder(obj, cluster)
        self._probes += probes_to(first, cluster, len(self.caches))
        tier = TIER_SERVER
        if first is not None:
            tier = TIER_COOP_PROXY
            self._coop_fetches += 1
        stored = True
        for victim in evicted:
            if victim == obj:
                stored = False  # capacity-zero cache rejected the insert
            else:
                presence.discard(victim, cluster)
        if stored:
            presence.add(obj, cluster)
        return tier

    def _process_reference(self, cache: LfuCache, cluster: int, obj: int) -> str:
        if cache.lookup(obj):
            return TIER_LOCAL_PROXY
        # Probe cooperating proxies (membership only: a remote probe is
        # not a local reference at the remote cache).
        tier = TIER_SERVER
        for other, remote in enumerate(self.caches):
            if other != cluster:
                self._probes += 1
                if remote.contains(obj):
                    tier = TIER_COOP_PROXY
                    self._coop_fetches += 1
                    break
        cache.insert(obj, size=self._size_of(obj))
        return tier

    def finalize(self) -> tuple[dict[str, int], dict[str, float]]:
        return {"coop_probes": self._probes, "coop_fetches": self._coop_fetches}, {}
