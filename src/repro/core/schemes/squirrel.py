"""Squirrel-style decentralised P2P web cache (related-work baseline, §6).

Squirrel (Iyer, Rowstron & Druschel, PODC'02) pools the browser caches
of client machines into a serverless web cache over Pastry — *without*
a proxy.  The paper positions itself against Squirrel: federating client
caches *under* cooperating proxies keeps a fast dedicated tier and lets
organisations share objects across firewalls via the proxies, which
Squirrel's direct client-to-client model cannot do (§6).

This scheme implements Squirrel's **home-store** model so the claim is
measurable rather than rhetorical:

* each object has a *home node* — the client cache the overlay assigns
  the SHA-1 objectId (numerically closest cacheId under Pastry, the
  id's successor under Chord);
* a request routes to the home node; a home hit is served
  client-to-client over the LAN;
* on a home miss the home node fetches from the origin server, stores
  the object (LRU replacement, as in Squirrel's browser caches) and
  forwards it — the extra LAN detour is charged explicitly;
* there is **no inter-organisation sharing**: client caches sit behind
  the firewall, so each cluster's Squirrel instance is isolated.

Fair storage comparison: without a proxy box, the machines that would
have hosted the proxy cache contribute their disk to the pool instead —
``include_proxy_budget`` (default True) spreads the proxy budget across
the client caches so Squirrel and Hier-GD manage the same total bytes.
"""

from __future__ import annotations

from ...cache import LruCache
from ...netmodel import TIER_LOCAL_P2P, TIER_SERVER
from ...overlay import (
    Dht,
    OverlayBackend,
    build_owner_table,
    make_overlay,
    object_ids_for_urls,
)
from ...protocol.messages import P2P_FETCH
from ...protocol.transport import Transport
from ...workload import Trace, object_url
from ..config import SimulationConfig
from ..simulator import CachingScheme

__all__ = ["SquirrelScheme"]


class SquirrelScheme(CachingScheme):
    """Home-store Squirrel: DHT-pooled browser caches, no proxy tier."""

    name = "squirrel"

    #: Spread the proxy cache budget over the client pool (see module doc).
    include_proxy_budget = True

    def __init__(
        self,
        config: SimulationConfig,
        traces: list[Trace],
        transport: Transport | None = None,
    ) -> None:
        super().__init__(config, traces, transport)
        if self.transport.faulty:
            # Same scheme, fault semantics from the transport (see FC).
            self.process = self._process_faulty  # type: ignore[method-assign]
        self._t_p2p = config.network.t_p2p
        self.overlays: list[OverlayBackend] = []
        self.dhts: list[Dht] = []
        self.idx_of_node: list[dict[int, int]] = []
        self.homes: list[list[LruCache]] = []
        self._owner_memo: list[dict[int, int]] = []
        self._fast = config.hot_path == "fast"
        #: Fast engine: per cluster, object id -> its home LruCache.
        self._home_table: list[list[LruCache]] = []
        for ci, sizing in enumerate(self.sizings):
            overlay = make_overlay(config)
            names = [f"squirrel{ci}/cache{k}" for k in range(sizing.n_clients)]
            if self._fast:
                nodes = overlay.bulk_add_named(names)
            else:
                nodes = [overlay.add_named(name) for name in names]
            mapping = {node.node_id: k for k, node in enumerate(nodes)}
            per_client = sizing.client_size
            if self.include_proxy_budget:
                per_client += sizing.proxy_size // max(1, sizing.n_clients)
            self.overlays.append(overlay)
            self.dhts.append(Dht(overlay, hop_sample_rate=config.hop_sample_rate))
            self.idx_of_node.append(mapping)
            self.homes.append([LruCache(per_client) for _ in range(sizing.n_clients)])
            self._owner_memo.append({})
        if self._fast:
            self._build_home_tables(config)

    def _build_home_tables(self, config: SimulationConfig) -> None:
        """Precompute every object's home cache (membership is static).

        One batched SHA-1 pass plus one vectorised sorted-ring resolution
        per cluster replaces the per-object owner memo; a sampled subset
        is still routed through the overlay so the mean-hops extra stays
        populated.
        """
        n_objects = 0
        for trace in self.traces:
            if len(trace.object_ids):
                n_objects = max(n_objects, int(trace.object_ids.max()) + 1)
        space = self.overlays[0].space
        keys = object_ids_for_urls(
            [object_url(i) for i in range(n_objects)], space
        )
        for ci, overlay in enumerate(self.overlays):
            owners = build_owner_table(
                overlay, keys, sample_rate=config.hop_sample_rate, record_stats=True
            )
            mapping = self.idx_of_node[ci]
            homes = self.homes[ci]
            self._home_table.append([homes[mapping[nid]] for nid in owners])

    def _home(self, cluster: int, obj: int) -> LruCache:
        if self._fast:
            return self._home_table[cluster][obj]
        memo = self._owner_memo[cluster]
        idx = memo.get(obj)
        if idx is None:
            dht = self.dhts[cluster]
            node = dht.owner(dht.object_id(object_url(obj)))
            idx = self.idx_of_node[cluster][node]
            memo[obj] = idx
        return self.homes[cluster][idx]

    def process(self, cluster: int, client: int, obj: int) -> str:
        hit, _ = self._home(cluster, obj).lookup_or_insert(
            obj, size=self._size_of(obj)
        )
        if hit:
            return TIER_LOCAL_P2P
        # Home miss: the home node fetches from the origin, stores the
        # object and relays it — one extra LAN leg on top of the server
        # round trip.
        self.add_extra_latency(self._t_p2p)
        return TIER_SERVER

    def _process_faulty(self, cluster: int, client: int, obj: int) -> str:
        """Serving path under a fault transport.

        Every request rides the overlay to its home node, so the
        client↔client fetch is the faultable exchange: when the retry
        budget is spent the requester fetches from the origin directly
        and the home store learns nothing (no proxy tier exists to fall
        back through — exactly the §6 structural weakness the paper
        holds against Squirrel, measurable here as degradation toward
        and below NC).
        """
        if not self.transport.attempt(P2P_FETCH):
            return TIER_SERVER
        hit, _ = self._home(cluster, obj).lookup_or_insert(
            obj, size=self._size_of(obj)
        )
        if hit:
            return TIER_LOCAL_P2P
        # Home miss: the home node fetches from the origin, stores the
        # object and relays it — one extra LAN leg on top of the server
        # round trip.
        self.add_extra_latency(self._t_p2p)
        return TIER_SERVER

    def finalize(self) -> tuple[dict[str, int], dict[str, float]]:
        total_msgs = sum(o.stats.messages for o in self.overlays)
        total_hops = sum(o.stats.total_hops for o in self.overlays)
        extras: dict[str, float] = {"extra_latency": self.extra_latency}
        if total_msgs:
            extras[f"mean_{self.overlays[0].name}_hops"] = total_hops / total_msgs
        messages: dict[str, int] = {}
        if self.transport.faulty:
            messages.update(self.transport.fault_counters)
        return messages, extras
