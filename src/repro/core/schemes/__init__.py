"""The seven caching schemes of the paper (§2, §3).

=========  ==========================================  ====================
name       cooperation                                 replacement
=========  ==========================================  ====================
nc         none                                        LFU
sc         serve each other's misses                   LFU
fc         misses + coordinated replacement            cost-benefit
nc-ec      none; unified proxy+P2P cache               unified LFU
sc-ec      misses; unified proxy+P2P caches            unified LFU
fc-ec      misses + coordination over proxy+P2P        cost-benefit
hier-gd    misses; P2P tier via real Pastry mechanism  greedy-dual (Hier-GD)
=========  ==========================================  ====================
"""

from ..hiergd import HierGdScheme
from ..simulator import CachingScheme
from .baselines import NcScheme, ScScheme
from .exploit import NcEcScheme, ScEcScheme
from .full import FcScheme
from .full_ec import FcEcScheme
from .squirrel import SquirrelScheme

#: Registry used by :mod:`repro.core.run` and the experiment harness,
#: in the paper's presentation order; "squirrel" is the §6 related-work
#: baseline (not part of the paper's figures).
SCHEME_REGISTRY: dict[str, type[CachingScheme]] = {
    NcScheme.name: NcScheme,
    ScScheme.name: ScScheme,
    FcScheme.name: FcScheme,
    NcEcScheme.name: NcEcScheme,
    ScEcScheme.name: ScEcScheme,
    FcEcScheme.name: FcEcScheme,
    HierGdScheme.name: HierGdScheme,
    SquirrelScheme.name: SquirrelScheme,
}

__all__ = [
    "SCHEME_REGISTRY",
    "CachingScheme",
    "NcScheme",
    "ScScheme",
    "FcScheme",
    "NcEcScheme",
    "ScEcScheme",
    "FcEcScheme",
    "HierGdScheme",
    "SquirrelScheme",
]
