"""FC-EC — full coordination over proxy *and* P2P client caches (§2).

The strongest upper bound in the paper: "all proxies and P2P client
caches not only share their cached objects but also coordinate object
replacement decisions", with cost-benefit replacement under perfect
frequency knowledge.

Implementation composes the two building blocks already proven out:

* the **global coordinated copy store** of :class:`FcScheme` (primary /
  duplicate copy values, greedy admission against the global minimum),
  with per-cluster capacity ``proxy_size + p2p_size``;
* a per-cluster :class:`~repro.cache.topk.TopKTracker` that partitions
  each cluster's copies into the proxy tier (the ``proxy_size`` most
  valuable copies, hits at ``Tl``) and the client tier (the rest, hits
  at ``Tl + Tp2p``) — the same hottest-objects-at-the-proxy discipline
  the unified -EC model uses, driven by copy values instead of raw
  frequency.

Serving a remote hit prefers a cluster holding the object in its proxy
tier (``Tc``) over one that must push it out of a client cache
(``Tc + Tp2p``).
"""

from __future__ import annotations

from ...cache import HeapDict
from ...cache.topk import TopKTracker
from ...netmodel import (
    TIER_COOP_P2P,
    TIER_COOP_PROXY,
    TIER_LOCAL_P2P,
    TIER_LOCAL_PROXY,
    TIER_SERVER,
)
from ...protocol.messages import PROXY_FETCH, PUSH
from ...protocol.transport import Transport
from ...workload import Trace
from ..config import SimulationConfig
from ..simulator import CachingScheme

__all__ = ["FcEcScheme"]


class FcEcScheme(CachingScheme):
    """Full coordination across proxy caches and P2P client caches."""

    name = "fc-ec"

    def __init__(
        self,
        config: SimulationConfig,
        traces: list[Trace],
        transport: Transport | None = None,
    ) -> None:
        super().__init__(config, traces, transport)
        if self.transport.faulty:
            # Same scheme, fault semantics from the transport (see FC).
            self.process = self._process_faulty  # type: ignore[method-assign]
        self._freq = [t.reference_counts() for t in traces]
        self._freq_total = sum(self._freq)
        self.capacity = sum(s.proxy_size + s.p2p_size for s in self.sizings)
        net = config.network
        self._benefit_remote = net.benefit_first_copy_remote
        self._benefit_local = net.benefit_local_copy
        self._copies = HeapDict()
        self._holders: dict[int, set[int]] = {}
        self._primary: dict[int, int] = {}
        self._local: list[set[int]] = [set() for _ in traces]
        self._placement_updates = 0
        #: Capacity units in use (== copy count under unit sizes).
        self._used = 0
        self._tiers = [
            TopKTracker(
                s.proxy_size,
                budget=s.proxy_size if s.by_bytes else None,
            )
            for s in self.sizings
        ]

    def _value(self, obj: int, cluster: int, primary: bool) -> float:
        v = float(self._freq[cluster][obj]) * self._benefit_local
        if primary:
            v += float(self._freq_total[obj]) * self._benefit_remote
        return v

    def _add_copy(self, obj: int, cluster: int) -> None:
        holders = self._holders.setdefault(obj, set())
        primary = not holders
        holders.add(cluster)
        if primary:
            self._primary[obj] = cluster
        self._local[cluster].add(obj)
        self._placement_updates += 1
        value = self._value(obj, cluster, primary)
        size = self._size_of(obj)
        self._used += size
        self._copies.push((obj, cluster), value / size)
        self._tiers[cluster].add(obj, value, size=size)

    def _evict_min(self) -> None:
        (obj, cluster), _density = self._copies.pop_min()
        self._drop_copy(obj, cluster)

    def _drop_copy(self, obj: int, cluster: int) -> None:
        """Bookkeeping for a dying copy (its heap entry already popped,
        or discarded here if a promotion re-pushed it in the meantime)."""
        self._placement_updates += 1
        self._copies.discard((obj, cluster))
        self._used -= self._size_of(obj)
        self._local[cluster].discard(obj)
        self._tiers[cluster].remove(obj)
        holders = self._holders[obj]
        holders.discard(cluster)
        if not holders:
            del self._holders[obj]
            del self._primary[obj]
            return
        if self._primary[obj] == cluster:
            new_primary = max(holders, key=lambda q: self._freq[q][obj])
            self._primary[obj] = new_primary
            value = self._value(obj, new_primary, True)
            self._copies.push((obj, new_primary), value / self._size_of(obj))
            self._tiers[new_primary].update(obj, value)

    def _consider_copy(self, obj: int, cluster: int) -> None:
        """Greedy global admission; size-aware exactly as in
        :meth:`FcScheme._consider_copy` (value density vs min-density
        incumbents, single-victim rule at unit sizes)."""
        if obj in self._local[cluster]:
            return
        size = self._size_of(obj)
        if size > self.capacity:
            return
        primary = obj not in self._holders
        if self._used + size <= self.capacity:
            self._add_copy(obj, cluster)
            return
        density = self._value(obj, cluster, primary) / size
        victims: list[tuple[tuple[int, int], float]] = []
        freed = 0
        admit = True
        while self._used - freed + size > self.capacity:
            victim, vdensity = self._copies.peek_min()
            if vdensity >= density:
                admit = False
                break
            self._copies.pop_min()
            victims.append((victim, vdensity))
            freed += self._size_of(victim[0])
        if not admit:
            for key, prio in victims:
                self._copies.push(key, prio)  # rejection leaves no trace
            return
        for (vobj, vcluster), _prio in victims:
            self._drop_copy(vobj, vcluster)
        self._add_copy(obj, cluster)

    def process(self, cluster: int, client: int, obj: int) -> str:
        if obj in self._local[cluster]:
            return (
                TIER_LOCAL_PROXY
                if self._tiers[cluster].in_top(obj)
                else TIER_LOCAL_P2P
            )
        holders = self._holders.get(obj)
        if holders:
            # Prefer a remote proxy-tier copy over a remote P2P push.
            tier = TIER_COOP_P2P
            for q in holders:
                if self._tiers[q].in_top(obj):
                    tier = TIER_COOP_PROXY
                    break
        else:
            tier = TIER_SERVER
        self._consider_copy(obj, cluster)
        return tier

    def _process_faulty(self, cluster: int, client: int, obj: int) -> str:
        """Serving path under a fault transport.

        A remote proxy-tier hit rides the cooperating-proxy link; a
        remote client-tier hit rides the push link (``Tc + Tp2p``).
        Local tiers (own proxy, own P2P partition) are LAN-side and stay
        fault-free, matching the Hier-GD model where only cooperation
        links degrade.
        """
        if obj in self._local[cluster]:
            return (
                TIER_LOCAL_PROXY
                if self._tiers[cluster].in_top(obj)
                else TIER_LOCAL_P2P
            )
        holders = self._holders.get(obj)
        tier = TIER_SERVER
        if holders:
            proxy_side = any(self._tiers[q].in_top(obj) for q in holders)
            if proxy_side:
                if self.transport.attempt(PROXY_FETCH):
                    tier = TIER_COOP_PROXY
            elif self.transport.attempt(PUSH):
                tier = TIER_COOP_P2P
        self._consider_copy(obj, cluster)
        return tier

    def finalize(self) -> tuple[dict[str, int], dict[str, float]]:
        """Coordination cost: one update message per placement change."""
        messages = {"placement_updates": self._placement_updates}
        extras: dict[str, float] = {}
        if self.transport.faulty:
            messages.update(self.transport.fault_counters)
            extras["extra_latency"] = self.extra_latency
        return messages, extras
