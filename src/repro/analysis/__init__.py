"""Analysis helpers: sweep containers, tables, plots, analytical models."""

from .models import (
    che_characteristic_time,
    lru_hit_rate_che,
    predicted_fc_latency,
    predicted_nc_latency,
    static_topk_hit_rate,
)
from .plots import ascii_plot
from .results import Series, SweepResult

__all__ = [
    "ascii_plot",
    "Series",
    "SweepResult",
    "che_characteristic_time",
    "lru_hit_rate_che",
    "predicted_fc_latency",
    "predicted_nc_latency",
    "static_topk_hit_rate",
]
