"""Experiment result containers: series, sweeps, tables.

A paper figure is a set of *series* (one per scheme or per parameter
value) over a common x-axis (usually proxy cache size as % of the
infinite cache size).  :class:`SweepResult` holds that structure plus
enough metadata to regenerate it, and renders itself as aligned text
tables (the benchmark harness prints the same rows the paper plots) and
CSV for external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

__all__ = ["Series", "SweepResult"]


@dataclass
class Series:
    """One labelled curve: y-values aligned with the sweep's x-axis."""

    label: str
    values: list[float]

    def __post_init__(self) -> None:
        self.values = [float(v) for v in self.values]


@dataclass
class SweepResult:
    """A figure's worth of data: x-axis + named series + metadata."""

    title: str
    x_label: str
    x_values: list[float]
    y_label: str = "latency gain (%)"
    series: list[Series] = field(default_factory=list)
    notes: str = ""

    def add(self, label: str, values: Iterable[float]) -> None:
        values = list(values)
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} points, x-axis has "
                f"{len(self.x_values)}"
            )
        self.series.append(Series(label, values))

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    @property
    def labels(self) -> list[str]:
        return [s.label for s in self.series]

    # -- rendering ------------------------------------------------------------

    def to_table(self, width: int = 9, precision: int = 1) -> str:
        """Aligned text table: one row per x value, one column per series."""
        head = f"{self.x_label:>{width}} " + " ".join(
            f"{s.label:>{width}}" for s in self.series
        )
        lines = [self.title, "=" * len(head), head, "-" * len(head)]
        for i, x in enumerate(self.x_values):
            row = f"{x:>{width}g} " + " ".join(
                f"{s.values[i]:>{width}.{precision}f}" for s in self.series
            )
            lines.append(row)
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        header = ",".join([self.x_label] + [s.label for s in self.series])
        rows = [header]
        for i, x in enumerate(self.x_values):
            rows.append(
                ",".join([f"{x:g}"] + [f"{s.values[i]:.6g}" for s in self.series])
            )
        return "\n".join(rows) + "\n"

    def save_csv(self, path: str | Path) -> None:
        Path(path).write_text(self.to_csv(), encoding="ascii")

    @classmethod
    def load_csv(cls, path: str | Path, title: str = "") -> "SweepResult":
        lines = Path(path).read_text(encoding="ascii").strip().splitlines()
        header = lines[0].split(",")
        columns = list(zip(*(line.split(",") for line in lines[1:])))
        out = cls(
            title=title or Path(path).stem,
            x_label=header[0],
            x_values=[float(v) for v in columns[0]],
        )
        for label, col in zip(header[1:], columns[1:]):
            out.add(label, [float(v) for v in col])
        return out
