"""Terminal-friendly line plots for sweep results.

The execution environment has no plotting stack, so the experiment
harness renders figures as ASCII line charts — enough to eyeball the
shapes the paper reports (who wins, where curves cross, how gains decay
with cache size).  CSV export (:meth:`SweepResult.to_csv`) feeds real
plotting tools offline.
"""

from __future__ import annotations

from .results import SweepResult

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    sweep: SweepResult,
    width: int = 64,
    height: int = 18,
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render a sweep as an ASCII chart with one marker per series."""
    if not sweep.series:
        return f"{sweep.title}\n(no series)"
    if width < 8 or height < 4:
        raise ValueError("width must be >= 8 and height >= 4")

    all_y = [v for s in sweep.series for v in s.values]
    lo = min(all_y) if y_min is None else y_min
    hi = max(all_y) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    xs = sweep.x_values
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, series in enumerate(sweep.series):
        marker = _MARKERS[si % len(_MARKERS)]
        for x, y in zip(xs, series.values):
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((y - lo) / (hi - lo) * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[height - 1 - row][col] = marker

    lines = [sweep.title]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{hi:8.1f} |"
        elif i == height - 1:
            label = f"{lo:8.1f} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9 + f" {x_lo:<10g}{sweep.x_label:^{max(0, width - 22)}}{x_hi:>10g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={s.label}" for i, s in enumerate(sweep.series)
    )
    lines.append(" " * 9 + " " + legend)
    return "\n".join(lines)
