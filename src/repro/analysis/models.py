"""Closed-form cache models that cross-validate the simulator.

Three classic analytical results predict what the trace-driven simulator
should measure; the test suite checks the two agree.  Any future change
that silently breaks a policy's semantics shows up as model divergence —
a much sharper oracle than "the numbers moved".

* :func:`che_characteristic_time` / :func:`lru_hit_rate_che` — Che's
  approximation for LRU under the independent reference model (IRM):
  the characteristic time ``T`` solves ``Σ_i (1 − e^{−λ_i T}) = C`` and
  each object hits with probability ``1 − e^{−λ_i T}``.  The ProWGen
  generator with ``stack_fraction = 0`` *is* an IRM source, so the
  approximation applies directly.
* :func:`static_topk_hit_rate` — a perfect-frequency cache of size C
  converges to holding the C most-referenced objects; each covered
  object then hits on all but its first access.  This upper-bounds (and
  with perfect-LFU, closely tracks) the NC scheme.
* :func:`predicted_fc_latency` — the FC upper bound in closed form:
  static optimal placement of the ``P·C`` globally most valuable objects
  with no duplicates, accesses hitting locally with probability ``1/P``
  (statistically identical clusters), remotely otherwise.

All functions take reference *counts* (as produced by
:meth:`~repro.workload.trace.Trace.reference_counts`), not fitted
distributions — the validation is exact per trace.
"""

from __future__ import annotations

import numpy as np

from ..netmodel import NetworkConfig

__all__ = [
    "che_characteristic_time",
    "lru_hit_rate_che",
    "static_topk_hit_rate",
    "predicted_nc_latency",
    "predicted_fc_latency",
]


def che_characteristic_time(counts: np.ndarray, capacity: int, tol: float = 1e-10) -> float:
    """Solve ``Σ_i (1 − e^{−λ_i T}) = capacity`` for T (Che, 2002).

    ``counts`` are per-object reference counts; rates λ_i are counts
    normalised by the trace length (the time unit is one request).
    """
    counts = np.asarray(counts, dtype=np.float64)
    active = counts[counts > 0]
    if capacity <= 0:
        return 0.0
    if capacity >= active.size:
        return float("inf")
    rates = active / active.sum()

    def occupancy(t: float) -> float:
        return float((1.0 - np.exp(-rates * t)).sum())

    lo, hi = 0.0, 1.0
    while occupancy(hi) < capacity:
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - pathological counts
            return hi
    # Bisection: occupancy is monotone increasing in t.
    while hi - lo > tol * max(1.0, hi):
        mid = (lo + hi) / 2
        if occupancy(mid) < capacity:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def lru_hit_rate_che(counts: np.ndarray, capacity: int) -> float:
    """Request-weighted LRU hit rate under Che's approximation."""
    counts = np.asarray(counts, dtype=np.float64)
    active = counts[counts > 0]
    if capacity <= 0 or active.size == 0:
        return 0.0
    if capacity >= active.size:
        # Everything fits: only first accesses miss.
        return float((active - 1).sum() / active.sum())
    t = che_characteristic_time(counts, capacity)
    rates = active / active.sum()
    per_object_hit = 1.0 - np.exp(-rates * t)
    return float((rates * per_object_hit).sum())


def static_topk_hit_rate(counts: np.ndarray, capacity: int) -> float:
    """Hit rate of a static cache holding the ``capacity`` hottest objects.

    Each covered object misses exactly once (its first access) — the
    converged behaviour of a perfect-frequency policy, ignoring the
    transient in which the top-K set is still being discovered.
    """
    counts = np.asarray(counts, dtype=np.int64)
    active = np.sort(counts[counts > 0])[::-1]
    if capacity <= 0 or active.size == 0:
        return 0.0
    covered = active[: min(capacity, active.size)]
    total = active.sum()
    return float((covered - 1).sum() / total)


def predicted_nc_latency(
    counts: np.ndarray, capacity: int, network: NetworkConfig | None = None
) -> float:
    """Closed-form NC mean latency from the static top-K model."""
    network = network or NetworkConfig()
    h = static_topk_hit_rate(counts, capacity)
    return h * network.latency("local_proxy") + (1 - h) * network.latency("server")


def predicted_fc_latency(
    counts_per_cluster: list[np.ndarray],
    proxy_capacity: int,
    network: NetworkConfig | None = None,
) -> float:
    """Closed-form FC mean latency: static no-duplicate optimal placement.

    The ``P · proxy_capacity`` globally most-referenced objects are
    cached, one copy each; with statistically identical clusters a
    covered access is local with probability ``1/P``.  Each covered
    object still pays one server fetch (cold start) per cluster-local
    first access — approximated as one server access per covered object
    total, which at paper trace lengths is negligible either way.
    """
    network = network or NetworkConfig()
    p = len(counts_per_cluster)
    if p == 0:
        raise ValueError("need at least one cluster")
    total_counts = np.sum(counts_per_cluster, axis=0)
    active = np.sort(total_counts[total_counts > 0])[::-1]
    capacity = min(p * proxy_capacity, active.size)
    total = active.sum()
    covered_mass = active[:capacity].sum() - capacity  # minus cold starts
    covered_share = covered_mass / total
    local = covered_share / p
    remote = covered_share * (p - 1) / p
    miss = 1.0 - covered_share
    return (
        local * network.latency("local_proxy")
        + remote * network.latency("coop_proxy")
        + miss * network.latency("server")
    )
