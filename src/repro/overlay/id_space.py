"""The circular 128-bit identifier space used by the Pastry overlay.

Pastry assigns each node a *nodeId* and each object an *objectId* drawn
uniformly from a circular space of ``2**128`` identifiers.  Identifiers are
interpreted as sequences of digits in base ``2**b`` (``b`` is a Pastry
configuration parameter, typically 4, i.e. hexadecimal digits); prefix
routing resolves one digit per hop.

This module provides the arithmetic on that space:

* :func:`node_id_from_name` / :func:`object_id_for_url` — deterministic
  SHA-1-based identifier derivation (the paper hashes object URLs with
  SHA-1, §4.1).
* :func:`ring_distance` — shortest circular distance, used to find the node
  *numerically closest* to a key.
* :func:`shared_prefix_len` — length of the common digit prefix of two ids,
  the quantity Pastry's routing table is organised around.
* :class:`IdSpace` — bundles the parameters (bit width, digit base) so the
  rest of the overlay code never hard-codes them.

Everything here is pure arithmetic on Python ints; 128-bit values are well
within native int range so no bignum tricks are needed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = [
    "DEFAULT_ID_BITS",
    "DEFAULT_B",
    "IdSpace",
    "node_id_from_name",
    "object_id_for_url",
    "ring_distance",
    "cw_distance",
    "shared_prefix_len",
    "digit_at",
]

#: Width of the identifier space in bits (Pastry uses 128-bit SHA-1 prefixes).
DEFAULT_ID_BITS = 128

#: Pastry's digit-width configuration parameter ``b`` (digits are base 2**b).
DEFAULT_B = 4


def _sha1_int(data: bytes, bits: int) -> int:
    """Return the top ``bits`` bits of SHA-1(data) as an int."""
    digest = hashlib.sha1(data).digest()
    value = int.from_bytes(digest, "big")  # 160 bits
    return value >> (160 - bits) if bits < 160 else value << (bits - 160)


def node_id_from_name(name: str, bits: int = DEFAULT_ID_BITS) -> int:
    """Derive a nodeId from a stable node name (e.g. ``"client-42"``).

    Pastry derives nodeIds from a cryptographic hash of the node's public
    key or IP address; for the simulation a stable string name plays that
    role.  The result is uniform over the id space.
    """
    return _sha1_int(name.encode("utf-8"), bits)


def object_id_for_url(url: str, bits: int = DEFAULT_ID_BITS) -> int:
    """Hash an object URL into an objectId with SHA-1 (paper §4.1 step 1)."""
    return _sha1_int(url.encode("utf-8"), bits)


def cw_distance(a: int, b: int, bits: int = DEFAULT_ID_BITS) -> int:
    """Clockwise (increasing-id) distance from ``a`` to ``b`` on the ring."""
    return (b - a) % (1 << bits)


def ring_distance(a: int, b: int, bits: int = DEFAULT_ID_BITS) -> int:
    """Shortest circular distance between two identifiers.

    This is the metric defining "numerically closest" for DHT key
    placement: a key is stored on the live node whose nodeId minimises
    ``ring_distance(nodeId, key)``.
    """
    d = (a - b) % (1 << bits)
    return min(d, (1 << bits) - d)


def digit_at(value: int, index: int, b: int = DEFAULT_B, bits: int = DEFAULT_ID_BITS) -> int:
    """Return digit ``index`` (0 = most significant) of ``value`` in base 2**b."""
    ndigits = bits // b
    if index < 0 or index >= ndigits:
        raise IndexError(f"digit index {index} out of range for {ndigits} digits")
    shift = (ndigits - 1 - index) * b
    return (value >> shift) & ((1 << b) - 1)


def shared_prefix_len(a: int, b_val: int, b: int = DEFAULT_B, bits: int = DEFAULT_ID_BITS) -> int:
    """Number of leading base-``2**b`` digits shared by ``a`` and ``b_val``.

    Routing in Pastry forwards a message to a node whose id shares a prefix
    at least one digit longer than the current node's, so this function is
    on the overlay's hot path.  It short-circuits via XOR: the first
    differing digit is located from the bit length of ``a ^ b_val``.
    """
    if a == b_val:
        return bits // b
    diff = a ^ b_val
    # Index (from the left, 0-based) of the highest differing bit.
    high_bit = bits - diff.bit_length()
    return high_bit // b


@dataclass(frozen=True)
class IdSpace:
    """Parameter bundle for a Pastry identifier space.

    Attributes
    ----------
    bits:
        Total width of identifiers in bits.
    b:
        Pastry digit-width parameter; digits are base ``2**b``.
    """

    bits: int = DEFAULT_ID_BITS
    b: int = DEFAULT_B

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.b <= 0:
            raise ValueError("bits and b must be positive")
        if self.bits % self.b != 0:
            raise ValueError(f"bits ({self.bits}) must be a multiple of b ({self.b})")

    @property
    def size(self) -> int:
        """Number of identifiers in the space (``2**bits``)."""
        return 1 << self.bits

    @property
    def ndigits(self) -> int:
        """Number of base-``2**b`` digits in an identifier."""
        return self.bits // self.b

    @property
    def digit_base(self) -> int:
        """The digit base ``2**b`` (number of routing-table columns)."""
        return 1 << self.b

    def node_id(self, name: str) -> int:
        return node_id_from_name(name, self.bits)

    def object_id(self, url: str) -> int:
        return object_id_for_url(url, self.bits)

    def distance(self, a: int, b: int) -> int:
        return ring_distance(a, b, self.bits)

    def cw_distance(self, a: int, b: int) -> int:
        return cw_distance(a, b, self.bits)

    def digit(self, value: int, index: int) -> int:
        return digit_at(value, index, self.b, self.bits)

    def prefix_len(self, a: int, b_val: int) -> int:
        return shared_prefix_len(a, b_val, self.b, self.bits)

    def contains(self, value: int) -> bool:
        """True if ``value`` is a valid identifier in this space."""
        return 0 <= value < self.size

    def format_id(self, value: int) -> str:
        """Render an identifier as zero-padded hex for logs and debugging."""
        return f"{value:0{self.bits // 4}x}"
