"""Network-proximity coordinates for the overlay's locality properties.

Pastry's distinguishing feature over plain prefix routing is *locality*:
among all nodes eligible for a routing-table slot it prefers the one
closest by a network proximity metric, which keeps the physical distance
of each hop short and the total route "stretch" (path distance over
direct distance) low.

The simulation models proximity as positions on a 2-D unit torus —
the standard stand-in for network round-trip distance in overlay
studies: it is homogeneous (no edge effects) and cheap to evaluate.
Coordinates derive deterministically from node names, so experiments are
reproducible without storing state.
"""

from __future__ import annotations

import hashlib
import math

__all__ = ["coords_for_name", "torus_distance", "path_distance"]


def coords_for_name(name: str) -> tuple[float, float]:
    """Deterministic position on the unit torus for a node name."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    x = int.from_bytes(digest[:4], "big") / 2**32
    y = int.from_bytes(digest[4:], "big") / 2**32
    return (x, y)


def torus_distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Euclidean distance on the unit torus (wrap-around per axis)."""
    dx = abs(a[0] - b[0])
    dy = abs(a[1] - b[1])
    dx = min(dx, 1.0 - dx)
    dy = min(dy, 1.0 - dy)
    return math.hypot(dx, dy)


def path_distance(points: list[tuple[float, float]]) -> float:
    """Total torus distance along a hop sequence."""
    return sum(
        torus_distance(points[i], points[i + 1]) for i in range(len(points) - 1)
    )
