"""Overlay membership and message routing for the simulated Pastry network.

:class:`Overlay` is the Pastry backend of the
:class:`~repro.overlay.contract.OverlayBackend` contract.  It owns the
set of live :class:`~repro.overlay.pastry.PastryNode` instances forming
one P2P client cache (one per client cluster in the paper) and moves
messages between them:

* :meth:`Overlay.join` implements the outcome of Pastry's join protocol —
  the new node initialises its routing table from the nodes on the route
  from its bootstrap to its id's current root, copies the root's leaf set,
  and announces itself so existing nodes fold it into their state.
* :meth:`Overlay.fail` / :meth:`Overlay.leave` remove a node and repair
  affected leaf sets / routing-table slots (the *result* of Pastry's repair
  protocol, not its message exchange — the paper's simulator does the
  same).
* :meth:`Overlay.route` performs hop-by-hop prefix routing and returns the
  delivery node with the hop count, feeding the paper's
  ``ceil(log_{2**b} N)`` hop-efficiency claim (§4.1).  The loop itself
  is the contract's shared driver; Pastry supplies the per-node
  decision and the stale-entry repair.

The overlay also maintains a globally sorted id list so tests can check
each delivery against the ground-truth *numerically closest* node, and so
the DHT layer can resolve keys in O(log N) on the simulation hot path.
"""

from __future__ import annotations

import bisect
import math

import numpy as np

from .contract import OverlayBackend, RouteResult, RouteStats
from .coords import coords_for_name, torus_distance
from .id_space import IdSpace
from .pastry import DEFAULT_LEAF_SET_SIZE, PastryNode

__all__ = ["RouteResult", "RouteStats", "Overlay"]


class Overlay(OverlayBackend):
    """A live Pastry overlay: membership, state maintenance, routing."""

    name = "pastry"

    def __init__(
        self,
        space: IdSpace | None = None,
        leaf_size: int = DEFAULT_LEAF_SET_SIZE,
        proximity: bool = False,
    ) -> None:
        """
        Parameters
        ----------
        proximity:
            Enable Pastry's locality heuristic: routing-table slots
            prefer the physically closest eligible node (coordinates on
            a unit torus derived from node names), reducing route
            stretch.  Leaf sets are id-space-defined and unaffected.
        """
        self.space = space or IdSpace()
        self.leaf_size = leaf_size
        self.proximity = proximity
        self.nodes: dict[int, PastryNode] = {}
        self.coords: dict[int, tuple[float, float]] = {}
        self._sorted_ids: list[int] = []
        self.stats = RouteStats()
        #: Bumped on every membership change; DHT caches key off this.
        self.epoch = 0
        #: Repair-event tallies (see :meth:`repair_counts`).
        self._leaf_repairs = 0
        self._slot_refills = 0

    def _prefer_for(self, owner_id: int):
        """Routing-table replacement heuristic for one node (or None)."""
        if not self.proximity:
            return None
        own = self.coords[owner_id]

        def closer(candidate: int, incumbent: int) -> bool:
            return torus_distance(self.coords[candidate], own) < torus_distance(
                self.coords[incumbent], own
            )

        return closer

    def _learn(self, node: PastryNode, other_id: int) -> None:
        node.learn(other_id, prefer=self._prefer_for(node.node_id))

    # -- membership -------------------------------------------------------

    def add_named(self, name: str) -> PastryNode:
        """Create and join a node whose id and coordinates derive from
        ``name``."""
        return self.join(self.space.node_id(name), coords=coords_for_name(name))

    def bulk_add_named(self, names: list[str]) -> list[PastryNode]:
        """Add many named nodes at once, materialising the converged state.

        Equivalent to sequential :meth:`add_named` calls for everything the
        simulation semantics depend on: membership, the sorted id list and
        every leaf set.  Incremental joins announce each newcomer to all
        live nodes, so each leaf set converges to the ``l/2`` ring-closest
        neighbours per side regardless of join order — exactly what this
        builds directly (and LeafSet stores each side sorted by distance,
        so even the list layout matches).  Routing tables are filled by
        offering every node to every node; first-offer-wins slot contention
        can resolve differently than under join order, so only *sampled
        hop statistics* may differ — routing correctness and DHT ownership
        do not.  O(N^2) total work instead of the join path's O(N^2 log N)
        with much smaller constants; the hot-path engine uses this for
        cluster construction.
        """
        created: list[PastryNode] = []
        for name in names:
            node_id = self.space.node_id(name)
            if node_id in self.nodes:
                raise ValueError(
                    f"node {self.space.format_id(node_id)} already in overlay"
                )
            if not self.space.contains(node_id):
                raise ValueError("node id outside id space")
            node = PastryNode(node_id, self.space, self.leaf_size)
            self.nodes[node_id] = node
            self.coords[node_id] = coords_for_name(name)
            created.append(node)
        self._sorted_ids = sorted(self.nodes)
        self.epoch += len(created)
        ids = self._sorted_ids
        n = len(ids)
        space = self.space
        bits = space.bits
        b = space.b
        ndigits = bits // b
        mask = (1 << b) - 1
        size = 1 << bits
        offer_span = range(1, min(self.leaf_size + 1, n))
        for node in self.nodes.values():
            prefer = self._prefer_for(node.node_id)
            me = node.node_id
            idx = bisect.bisect_left(ids, me)
            # Leaf sets: only ring-adjacent nodes can be members, so offer
            # up to leaf_size neighbours per side; each side ends up with
            # the l/2 ring-closest of the offers whatever the order, so
            # fill the sides directly (same final state as LeafSet.add,
            # ascending-distance layout included).
            offers = {ids[(idx + off) % n] for off in offer_span}
            offers.update(ids[(idx - off) % n] for off in offer_span)
            offers.discard(me)
            cw_side: list[tuple[int, int]] = []
            ccw_side: list[tuple[int, int]] = []
            for cand in offers:
                cw = (cand - me) % size
                ccw = size - cw
                if cw <= ccw:
                    cw_side.append((cw, cand))
                else:
                    ccw_side.append((ccw, cand))
            cw_side.sort()
            ccw_side.sort()
            leaves = node.leaves
            half = leaves.half
            leaves.larger = [c for _, c in cw_side[:half]]
            leaves._ldist = [d for d, _ in cw_side[:half]]
            leaves.smaller = [c for _, c in ccw_side[:half]]
            leaves._sdist = [d for d, _ in ccw_side[:half]]
            # Routing table: offer everyone (the converged join gossip).
            # Without a proximity heuristic the first eligible offer wins,
            # so the slot fill is RoutingTable.consider with the prefix
            # and digit arithmetic inlined.
            if prefer is None:
                rows = node.table.rows
                for other in ids:
                    if other == me:
                        continue
                    p = (bits - (me ^ other).bit_length()) // b
                    row = rows[p]
                    col = (other >> ((ndigits - 1 - p) * b)) & mask
                    if row[col] is None:
                        row[col] = other
            else:
                table = node.table
                for other in ids:
                    if other != me:
                        table.consider(other, prefer=prefer)
        return created

    def join(
        self, node_id: int, coords: tuple[float, float] | None = None
    ) -> PastryNode:
        """Join a new node, initialising state per Pastry's join protocol.

        The new node X asks a bootstrap A to route a join message to X's
        id; X builds routing-table row ``i`` from the ``i``-th node on the
        path, takes its leaf set from the delivery node Z, then announces
        itself to every node it learned about (and, transitively, the
        announcement reaches all nodes whose state should include X —
        simulated here by offering X to all nodes whose leaf set or
        eligible routing slot it affects).
        """
        if node_id in self.nodes:
            raise ValueError(f"node {self.space.format_id(node_id)} already in overlay")
        if not self.space.contains(node_id):
            raise ValueError("node id outside id space")
        new = PastryNode(node_id, self.space, self.leaf_size)
        self.coords[node_id] = (
            coords if coords is not None else coords_for_name(self.space.format_id(node_id))
        )
        if self.nodes:
            bootstrap = self._sorted_ids[0]
            result = self._route_internal(node_id, start=bootstrap, record=False)
            # Row-by-row state transfer from the nodes along the join path.
            for hop_id in result.path:
                self._learn(new, hop_id)
                for known in self.nodes[hop_id].known_nodes():
                    self._learn(new, known)
            # Leaf set seeded from the root's leaf set.
            root = self.nodes[result.root]
            self._learn(new, result.root)
            for leaf in root.leaves.members():
                self._learn(new, leaf)
            # Announce: all live nodes fold the newcomer into their state.
            # (Pastry sends X's state to the nodes in X's tables; their
            # repair gossip reaches the rest. We apply the converged
            # outcome directly.)
            for other in self.nodes.values():
                self._learn(other, node_id)
        self.nodes[node_id] = new
        self._insert_sorted(node_id)
        self.epoch += 1
        return new

    def fail(self, node_id: int) -> None:
        """Remove a node and repair the survivors' state.

        Leaf-set repair contacts the live nodes adjacent on the ring;
        routing-table repair refills a vacated slot with a live eligible
        node (what Pastry's lazy repair converges to — §2.3 of the Pastry
        paper: ask a same-row peer for its entry).  Survivors that only
        learned the dead node via gossip (``_learn``) are covered too:
        ``forget`` purges it from both the routing table and the leaf
        set, and the vacated table slot is refilled when any eligible
        live node exists.
        """
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {self.space.format_id(node_id)}")
        del self.nodes[node_id]
        self.coords.pop(node_id, None)
        self._remove_sorted(node_id)
        self.epoch += 1
        for survivor in self.nodes.values():
            in_leaves = node_id in survivor.leaves
            vacated = survivor.table.remove(node_id)
            survivor.leaves.remove(node_id)
            if in_leaves:
                self._repair_leaves(survivor)
            if vacated:
                self._refill_slot(survivor, node_id)

    def _refill_slot(self, survivor: PastryNode, dead_id: int) -> None:
        """Refill the routing-table slot ``dead_id`` vacated at ``survivor``.

        The slot is row ``p`` = shared-prefix-length(survivor, dead) and
        column = the dead node's digit ``p``; every eligible replacement
        shares exactly that prefix-plus-digit, i.e. occupies one
        contiguous id interval, found by bisecting the sorted live ids.
        Without the proximity heuristic the first candidate fills the
        slot (deterministic); with it, every candidate is offered so the
        physically closest wins — the same rule joins use.
        """
        self._slot_refills += 1
        space = self.space
        p = space.prefix_len(survivor.node_id, dead_id)
        col = space.digit(dead_id, p)
        shift = space.bits - (p + 1) * space.b
        # The survivor's first p digits followed by the dead node's digit.
        prefix = (survivor.node_id >> (space.bits - p * space.b)) if p else 0
        lo = ((prefix << space.b) | col) << shift
        hi = lo + (1 << shift)
        ids = self._sorted_ids
        prefer = self._prefer_for(survivor.node_id)
        i = bisect.bisect_left(ids, lo)
        while i < len(ids) and ids[i] < hi:
            survivor.table.consider(ids[i], prefer=prefer)
            if prefer is None:
                break  # first eligible candidate keeps the slot
            i += 1

    def _repair_leaves(self, node: PastryNode) -> None:
        """Refill a node's leaf set from ring-adjacent live nodes."""
        self._leaf_repairs += 1
        n = len(self._sorted_ids)
        if n <= 1:
            return
        idx = bisect.bisect_left(self._sorted_ids, node.node_id)
        # Offer up to leaf_size neighbours on each side; LeafSet.add keeps
        # only the closest l/2 per side.
        for off in range(1, min(self.leaf_size + 1, n)):
            self._learn(node, self._sorted_ids[(idx + off) % n])
            self._learn(node, self._sorted_ids[(idx - off) % n])

    # -- placement --------------------------------------------------------

    def numerically_closest(self, key: int) -> int:
        """Ground-truth root for ``key``: live node minimising ring distance."""
        if not self._sorted_ids:
            raise RuntimeError("overlay is empty")
        ids = self._sorted_ids
        idx = bisect.bisect_left(ids, key)
        candidates = {ids[idx % len(ids)], ids[(idx - 1) % len(ids)]}
        return min(candidates, key=lambda n: (self.space.distance(n, key), n))

    def owner_of(self, key: int) -> int:
        """Pastry's placement rule: the numerically closest live node."""
        return self.numerically_closest(key)

    def bulk_owner_of(self, keys: np.ndarray) -> list[int]:
        """Vectorised :meth:`numerically_closest` for every key.

        The two ring candidates around each key's insertion point are
        compared by ``(ring_distance, nodeId)`` — the same tie-break the
        scalar ``min`` uses — over object-dtype arrays (ids exceed 64
        bits, so the modular arithmetic must stay exact).
        """
        ids = self.node_ids()
        if not ids:
            raise RuntimeError("overlay is empty")
        arr = np.empty(len(ids), dtype=object)
        arr[:] = ids
        keys = np.asarray(keys, dtype=object)
        n = len(ids)
        size = self.space.size
        pos = np.searchsorted(arr, keys)
        left = arr[(pos - 1) % n]
        right = arr[pos % n]
        dl = (left - keys) % size
        dl = np.minimum(dl, size - dl)
        dr = (right - keys) % size
        dr = np.minimum(dr, size - dr)
        pick_left = (dl < dr) | ((dl == dr) & (left < right))
        return np.where(pick_left, left, right).tolist()

    def neighbourhood(self, node_id: int) -> list[int]:
        """Pastry's repair/replica neighbourhood: the leaf set
        (``members()`` order — counter-clockwise side first, each side in
        ascending ring distance)."""
        return self.nodes[node_id].leaves.members()

    # -- routing ----------------------------------------------------------

    def expected_diameter(self) -> int:
        """Pastry resolves one base-``2**b`` digit per hop:
        ``ceil(log_{2**b} N)``."""
        n = len(self.nodes)
        if n <= 1:
            return 1
        return max(1, math.ceil(math.log(n, self.space.digit_base)))

    def _route_decision(self, current: int, key: int) -> tuple[str, int | None]:
        return self.nodes[current].route_decision(key)

    def _on_stale(self, current: int, stale_id: int) -> None:
        node = self.nodes[current]
        node.forget(stale_id)
        self._repair_leaves(node)

    def _record_route(self, result: RouteResult) -> None:
        pts = [self.coords[n] for n in result.path]
        travelled = sum(
            torus_distance(pts[i], pts[i + 1]) for i in range(len(pts) - 1)
        )
        direct = torus_distance(pts[0], pts[-1]) if len(pts) > 1 else 0.0
        self.stats.record(result.hops, path_distance=travelled, direct=direct)

    def repair_counts(self) -> dict[str, int]:
        return {
            "leaf_repairs": self._leaf_repairs,
            "slot_refills": self._slot_refills,
        }

    # -- convenience ------------------------------------------------------

    @classmethod
    def build(
        cls,
        names: list[str] | int,
        space: IdSpace | None = None,
        leaf_size: int = DEFAULT_LEAF_SET_SIZE,
        name_prefix: str = "cache",
        proximity: bool = False,
    ) -> "Overlay":
        """Construct an overlay by joining nodes one at a time.

        ``names`` may be an explicit list of node names or an int N, in
        which case nodes ``f"{name_prefix}-{i}"`` for i in 0..N-1 join.
        """
        overlay = cls(space=space, leaf_size=leaf_size, proximity=proximity)
        if isinstance(names, int):
            names = [f"{name_prefix}-{i}" for i in range(names)]
        for name in names:
            overlay.add_named(name)
        return overlay
