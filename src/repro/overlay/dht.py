"""DHT key-placement layer over a structured overlay backend.

The paper stores a proxy-evicted object in its P2P client cache by hashing
the object's URL with SHA-1 into an ``objectId`` and placing it at the
client cache the overlay assigns that id (§4.1 — the numerically closest
``cacheId`` under Pastry, the key's successor under Chord).  This module
provides that mapping:

* :meth:`Dht.owner` — the destination cacheId for a key.  Results are
  memoized per overlay *epoch* (membership version) because the simulator
  resolves the same hot URLs millions of times; a membership change
  invalidates the memo.
* :meth:`Dht.route` — full hop-by-hop overlay routing for the same key,
  used when the experiment wants hop statistics rather than only the
  destination (the simulation samples routes rather than paying O(log N)
  per request — see ``hop_sample_rate``).
* :meth:`Dht.object_id` — SHA-1 URL hashing into the overlay's id space.

Separating "who owns this key" (pure placement, a function of membership
only, O(log N) via the sorted id list) from "how does a message get
there" (the backend's own routing geometry) mirrors how a real
deployment behaves: placement decides where an object lives, while
routing determines message cost.
"""

from __future__ import annotations

from .contract import OverlayBackend, RouteResult

__all__ = ["Dht"]


class Dht:
    """Key → owning node resolution with per-epoch memoization."""

    def __init__(self, overlay: OverlayBackend, hop_sample_rate: int = 0) -> None:
        """
        Parameters
        ----------
        overlay:
            The live overlay backend to resolve against.
        hop_sample_rate:
            If > 0, every ``hop_sample_rate``-th :meth:`owner` call also
            performs full overlay routing so hop statistics accumulate on
            ``overlay.stats`` without paying routing cost on every lookup.
            0 disables sampling (placement-only).
        """
        self.overlay = overlay
        self.hop_sample_rate = hop_sample_rate
        self._memo: dict[int, int] = {}
        self._memo_epoch = overlay.epoch
        self._calls = 0

    def object_id(self, url: str) -> int:
        """SHA-1 hash of the URL, truncated into the overlay's id space."""
        return self.overlay.space.object_id(url)

    def _check_epoch(self) -> None:
        if self._memo_epoch != self.overlay.epoch:
            self._memo.clear()
            self._memo_epoch = self.overlay.epoch

    def owner(self, key: int) -> int:
        """NodeId owning ``key`` under the backend's placement rule."""
        self._check_epoch()
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        root = self.overlay.owner_of(key)
        self._memo[key] = root
        self._calls += 1
        if self.hop_sample_rate and self._calls % self.hop_sample_rate == 0:
            # Sampled full routing purely for hop statistics; delivery node
            # must agree with placement (asserted in tests).
            self.overlay.route(key)
        return root

    def owner_for_url(self, url: str) -> int:
        return self.owner(self.object_id(url))

    def route(self, key: int, start: int | None = None) -> RouteResult:
        """Full overlay routing (records hop statistics)."""
        return self.overlay.route(key, start=start)

    @property
    def memo_size(self) -> int:
        return len(self._memo)
