"""DHT key-placement layer over the Pastry overlay.

The paper stores a proxy-evicted object in its P2P client cache by hashing
the object's URL with SHA-1 into an ``objectId`` and routing it to the
client cache with the numerically closest ``cacheId`` (§4.1).  This module
provides that mapping:

* :meth:`Dht.owner` — the destination cacheId for a key.  Results are
  memoized per overlay *epoch* (membership version) because the simulator
  resolves the same hot URLs millions of times; a membership change
  invalidates the memo.
* :meth:`Dht.route` — full hop-by-hop Pastry routing for the same key,
  used when the experiment wants hop statistics rather than only the
  destination (the simulation samples routes rather than paying O(log N)
  per request — see ``hop_sample_rate``).
* :meth:`Dht.object_id` — SHA-1 URL hashing into the overlay's id space.

Separating "who owns this key" (pure placement, O(log N) via the sorted id
list) from "how does a message get there" (Pastry prefix routing) mirrors
how a real deployment behaves: placement is a function of membership only,
while routing determines message cost.
"""

from __future__ import annotations

from .network import Overlay, RouteResult

__all__ = ["Dht"]


class Dht:
    """Key → owning node resolution with per-epoch memoization."""

    def __init__(self, overlay: Overlay, hop_sample_rate: int = 0) -> None:
        """
        Parameters
        ----------
        overlay:
            The live Pastry overlay to resolve against.
        hop_sample_rate:
            If > 0, every ``hop_sample_rate``-th :meth:`owner` call also
            performs full Pastry routing so hop statistics accumulate on
            ``overlay.stats`` without paying routing cost on every lookup.
            0 disables sampling (placement-only).
        """
        self.overlay = overlay
        self.hop_sample_rate = hop_sample_rate
        self._memo: dict[int, int] = {}
        self._memo_epoch = overlay.epoch
        self._calls = 0

    def object_id(self, url: str) -> int:
        """SHA-1 hash of the URL, truncated into the overlay's id space."""
        return self.overlay.space.object_id(url)

    def _check_epoch(self) -> None:
        if self._memo_epoch != self.overlay.epoch:
            self._memo.clear()
            self._memo_epoch = self.overlay.epoch

    def owner(self, key: int) -> int:
        """NodeId of the live node numerically closest to ``key``."""
        self._check_epoch()
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        root = self.overlay.numerically_closest(key)
        self._memo[key] = root
        self._calls += 1
        if self.hop_sample_rate and self._calls % self.hop_sample_rate == 0:
            # Sampled full routing purely for hop statistics; delivery node
            # must agree with placement (asserted in tests).
            self.overlay.route(key)
        return root

    def owner_for_url(self, url: str) -> int:
        return self.owner(self.object_id(url))

    def route(self, key: int, start: int | None = None) -> RouteResult:
        """Full Pastry routing (records hop statistics)."""
        return self.overlay.route(key, start=start)

    @property
    def memo_size(self) -> int:
        return len(self._memo)
