"""Backend selection: one place that maps config → overlay instance.

Every layer that used to construct ``Overlay(space=..., leaf_size=...)``
directly (Hier-GD's per-cluster rings, Squirrel's) now goes through
:func:`make_overlay`, so adding a backend means touching this registry
and nothing above it.
"""

from __future__ import annotations

from typing import Any

from .chord import ChordOverlay
from .contract import OverlayBackend
from .id_space import IdSpace
from .network import Overlay

__all__ = ["OVERLAY_BACKENDS", "make_overlay"]

#: Registry of selectable backends (name → class), for CLI choices etc.
OVERLAY_BACKENDS = {
    "pastry": Overlay,
    "chord": ChordOverlay,
}


def make_overlay(config: Any) -> OverlayBackend:
    """Construct the overlay backend selected by ``config.overlay``.

    ``config`` is any object exposing the backend knobs of
    :class:`repro.core.config.SimulationConfig` (kept duck-typed so this
    package never imports ``repro.core``).
    """
    backend = getattr(config, "overlay", "pastry")
    if backend == "pastry":
        space = IdSpace(b=config.pastry_b)
        return Overlay(space=space, leaf_size=config.leaf_set_size)
    if backend == "chord":
        return ChordOverlay(successor_list_size=config.chord_successors)
    raise ValueError(
        f"unknown overlay backend {backend!r}; "
        f"choose one of {sorted(OVERLAY_BACKENDS)}"
    )
