"""Vectorised DHT placement: whole object→owner tables in one pass.

The reference engine resolves each object's owner on first touch —
SHA-1, then an O(log N) sorted-ring search, memoised per overlay epoch
(:class:`repro.overlay.dht.Dht`).  That is already cheap per call, but
the hot-path engine goes further: it precomputes the *entire* mapping
for a cluster up front with

* one batched SHA-1 pass over all object URLs
  (:func:`object_ids_for_urls`), and
* the backend's vectorised ownership resolution
  (:meth:`~repro.overlay.contract.OverlayBackend.bulk_owner_of` — a
  single ``numpy.searchsorted`` over the sorted nodeId ring, plus
  whatever tie-break the backend's placement rule needs),

turning per-request dict probes + hashing into one table lookup.  A
sampled subset of keys is still routed hop-by-hop through the live
backend so the mean-hops statistic survives, and every sampled delivery
is asserted against the table — placement and routing must agree,
whichever backend is live.

Identifiers are Python ints wider than 64 bits, so the arrays use
``dtype=object``; ``searchsorted`` works on those via ordinary
comparisons, and the vectorised modular arithmetic stays exact.
"""

from __future__ import annotations

from hashlib import sha1

import numpy as np

from .contract import OverlayBackend
from .id_space import IdSpace

__all__ = ["object_ids_for_urls", "build_owner_table"]


def object_ids_for_urls(urls: list[str], space: IdSpace) -> np.ndarray:
    """objectIds for many URLs at once; matches :meth:`IdSpace.object_id`.

    Returns an object-dtype array of Python ints (ids exceed 64 bits).
    """
    bits = space.bits
    shift = 160 - bits
    if shift >= 0:
        raw = [
            int.from_bytes(sha1(u.encode("utf-8")).digest(), "big") >> shift
            for u in urls
        ]
    else:
        raw = [
            int.from_bytes(sha1(u.encode("utf-8")).digest(), "big") << -shift
            for u in urls
        ]
    out = np.empty(len(raw), dtype=object)
    out[:] = raw
    return out


def build_owner_table(
    overlay: OverlayBackend,
    keys: np.ndarray | list[int],
    sample_rate: int = 0,
    record_stats: bool = True,
) -> list[int]:
    """Owner nodeId per key via one vectorised resolution pass.

    Delegates to the backend's :meth:`bulk_owner_of`, which reproduces
    its scalar ``owner_of`` exactly for every key (Pastry's
    ``(ring_distance, nodeId)`` tie-break; Chord's successor-of-key).

    When ``sample_rate > 0``, every ``sample_rate``-th key is also routed
    hop-by-hop through the live backend; the delivery node is asserted
    against the table entry (placement/routing agreement — a mismatch
    means corrupt routing state) and, when ``record_stats``, the hops
    feed ``overlay.stats`` so the mean-hops extra stays populated.
    """
    keys = np.asarray(keys, dtype=object)
    owners = overlay.bulk_owner_of(keys)
    if sample_rate > 0:
        for i in range(sample_rate - 1, len(owners), sample_rate):
            result = overlay.route(int(keys[i]), record=record_stats)
            if result.root != owners[i]:
                raise RuntimeError(
                    f"{overlay.name} routing disagrees with the placement "
                    f"table for key {overlay.space.format_id(int(keys[i]))}: "
                    f"routed to {overlay.space.format_id(result.root)}, table "
                    f"says {overlay.space.format_id(owners[i])}"
                )
    return owners
