"""Vectorised DHT placement: whole object→owner tables in one pass.

The reference engine resolves each object's owner on first touch —
SHA-1, then an O(log N) sorted-ring search, memoised per overlay epoch
(:class:`repro.overlay.dht.Dht`).  That is already cheap per call, but
the hot-path engine goes further: it precomputes the *entire* mapping
for a cluster up front with

* one batched SHA-1 pass over all object URLs
  (:func:`object_ids_for_urls`), and
* a single ``numpy.searchsorted`` over the sorted nodeId ring plus a
  vectorised ring-distance comparison (:func:`build_owner_table`),

turning per-request dict probes + hashing into one table lookup.  A
sampled subset of keys is still routed hop-by-hop through Pastry so the
``mean_pastry_hops`` statistic survives, and every sampled delivery is
asserted against the table — placement and routing must agree.

Identifiers are Python ints wider than 64 bits, so the arrays use
``dtype=object``; ``searchsorted`` works on those via ordinary
comparisons, and the vectorised modular arithmetic stays exact.
"""

from __future__ import annotations

from hashlib import sha1

import numpy as np

from .id_space import IdSpace
from .network import Overlay

__all__ = ["object_ids_for_urls", "build_owner_table"]


def object_ids_for_urls(urls: list[str], space: IdSpace) -> np.ndarray:
    """objectIds for many URLs at once; matches :meth:`IdSpace.object_id`.

    Returns an object-dtype array of Python ints (ids exceed 64 bits).
    """
    bits = space.bits
    shift = 160 - bits
    if shift >= 0:
        raw = [
            int.from_bytes(sha1(u.encode("utf-8")).digest(), "big") >> shift
            for u in urls
        ]
    else:
        raw = [
            int.from_bytes(sha1(u.encode("utf-8")).digest(), "big") << -shift
            for u in urls
        ]
    out = np.empty(len(raw), dtype=object)
    out[:] = raw
    return out


def build_owner_table(
    overlay: Overlay,
    keys: np.ndarray | list[int],
    sample_rate: int = 0,
    record_stats: bool = True,
) -> list[int]:
    """Owner nodeId per key via one vectorised sorted-ring resolution.

    Reproduces :meth:`Overlay.numerically_closest` exactly for every key:
    the two ring candidates around the insertion point are compared by
    ``(ring_distance, nodeId)``, the same tie-break ``min`` uses there.

    When ``sample_rate > 0``, every ``sample_rate``-th key is also routed
    hop-by-hop through Pastry; the delivery node is asserted against the
    table entry (placement/routing agreement — a mismatch means corrupt
    routing state) and, when ``record_stats``, the hops feed
    ``overlay.stats`` so the ``mean_pastry_hops`` extra stays populated.
    """
    ids = overlay.node_ids()
    if not ids:
        raise RuntimeError("overlay is empty")
    arr = np.empty(len(ids), dtype=object)
    arr[:] = ids
    keys = np.asarray(keys, dtype=object)
    n = len(ids)
    size = overlay.space.size
    pos = np.searchsorted(arr, keys)
    left = arr[(pos - 1) % n]
    right = arr[pos % n]
    dl = (left - keys) % size
    dl = np.minimum(dl, size - dl)
    dr = (right - keys) % size
    dr = np.minimum(dr, size - dr)
    pick_left = (dl < dr) | ((dl == dr) & (left < right))
    owners: list[int] = np.where(pick_left, left, right).tolist()
    if sample_rate > 0:
        for i in range(sample_rate - 1, len(owners), sample_rate):
            result = overlay.route(int(keys[i]), record=record_stats)
            if result.root != owners[i]:
                raise RuntimeError(
                    "Pastry routing disagrees with the placement table for "
                    f"key {overlay.space.format_id(int(keys[i]))}: routed to "
                    f"{overlay.space.format_id(result.root)}, table says "
                    f"{overlay.space.format_id(owners[i])}"
                )
    return owners
