"""Textbook Chord backend for the overlay contract.

Chord (Stoica et al., SIGCOMM 2001) organises nodes on the same SHA-1
identifier ring the Pastry backend uses, but with *successor* placement
and *finger-table* routing:

* **ownership** — a key is stored at ``successor(key)``: the first live
  node whose id is clockwise-equal-or-after the key (vs Pastry's
  numerically-closest rule, which may pick the counter-clockwise
  neighbour).
* **fingers** — node ``n`` keeps ``bits`` fingers, finger ``i`` =
  ``successor(n + 2**i)``; greedy routing forwards to the known node
  that makes the most clockwise progress without overshooting the key,
  giving O(log₂ N) hops.
* **successor lists** — each node tracks its ``r`` immediate clockwise
  successors (the replica/repair neighbourhood, Chord's analogue of
  Pastry's leaf set) plus its predecessor; these are kept eagerly
  correct on membership change (the converged outcome of Chord's
  ``stabilize``), which is what keeps routing *correct* under churn.
* **lazy finger repair** — fingers are NOT eagerly fixed on failure or
  join.  A stale finger pointing at a dead node is repaired when a
  route actually trips over it (the contract's ``_on_stale`` hook
  recomputes exactly the slots naming the dead node); a finger that
  merely misses a newcomer costs extra hops, never correctness, and
  heals on the next full rebuild.  :meth:`ChordOverlay.repair_counts`
  tallies both repair kinds for ``--profile``.

Everything is deterministic — node state is a pure function of the live
membership (plus which stale entries routes have tripped over), with no
randomness anywhere, so two identical runs produce identical results
(the overlay gate asserts this).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

import numpy as np

from .contract import OverlayBackend, RouteStats
from .id_space import IdSpace

__all__ = ["DEFAULT_SUCCESSOR_LIST_SIZE", "ChordNode", "ChordOverlay"]

#: Default successor-list length r.  Chord suggests r = O(log N); 16
#: matches Pastry's default leaf-set size so the two backends offer
#: Hier-GD's diversion the same number of neighbourhood candidates.
DEFAULT_SUCCESSOR_LIST_SIZE = 16


@dataclass
class ChordNode:
    """One Chord node: id, successor list, predecessor, finger table."""

    node_id: int
    space: IdSpace
    #: The r immediate clockwise successors, nearest first.
    successors: list[int] = field(default_factory=list)
    #: Immediate counter-clockwise neighbour (None in a singleton ring).
    predecessor: int | None = None
    #: finger[i] = successor(node_id + 2**i); None where the interval
    #: wraps back to this node (singleton ring).
    fingers: list[int | None] = field(default_factory=list)

    def known_nodes(self) -> list[int]:
        """Union of fingers and successor list (deduplicated)."""
        known = {f for f in self.fingers if f is not None}
        known.update(self.successors)
        if self.predecessor is not None:
            known.add(self.predecessor)
        known.discard(self.node_id)
        return list(known)


class ChordOverlay(OverlayBackend):
    """A live Chord ring: membership, successor/finger state, routing."""

    name = "chord"

    def __init__(
        self,
        space: IdSpace | None = None,
        successor_list_size: int = DEFAULT_SUCCESSOR_LIST_SIZE,
    ) -> None:
        if successor_list_size < 1:
            raise ValueError("successor_list_size must be >= 1")
        self.space = space or IdSpace()
        self.successor_list_size = successor_list_size
        self.nodes: dict[int, ChordNode] = {}
        self._sorted_ids: list[int] = []
        self.stats = RouteStats()
        self.epoch = 0
        self._finger_repairs = 0
        self._successor_repairs = 0

    # -- ring arithmetic --------------------------------------------------

    def _successor_id(self, key: int) -> int:
        """First live node clockwise-equal-or-after ``key`` (wraps)."""
        ids = self._sorted_ids
        idx = bisect.bisect_left(ids, key)
        return ids[idx % len(ids)]

    def _in_cw_interval(self, key: int, lo: int, hi: int) -> bool:
        """True if ``key`` lies in the clockwise half-open interval
        ``(lo, hi]`` on the ring."""
        size = self.space.size
        return (key - lo) % size <= (hi - lo) % size and key != lo

    # -- node state construction ------------------------------------------

    def _neighbour_state(self, node: ChordNode) -> None:
        """Set ``node``'s successor list and predecessor from the live
        ring (the converged outcome of Chord's ``stabilize``)."""
        ids = self._sorted_ids
        n = len(ids)
        idx = bisect.bisect_left(ids, node.node_id)
        node.successors = [
            ids[(idx + off) % n]
            for off in range(1, min(self.successor_list_size, n - 1) + 1)
        ]
        node.predecessor = ids[(idx - 1) % n] if n > 1 else None

    def _finger_state(self, node: ChordNode) -> None:
        """Build the full finger table from the live ring."""
        me = node.node_id
        size = self.space.size
        fingers: list[int | None] = []
        for i in range(self.space.bits):
            target = self._successor_id((me + (1 << i)) % size)
            fingers.append(target if target != me else None)
        node.fingers = fingers

    def _init_node(self, node: ChordNode) -> None:
        self._neighbour_state(node)
        self._finger_state(node)

    # -- membership -------------------------------------------------------

    def add_named(self, name: str) -> ChordNode:
        """Create and join a node whose id derives from ``name``."""
        return self.join(self.space.node_id(name))

    def join(self, node_id: int) -> ChordNode:
        """Join a new node.

        The newcomer builds its own state in full; existing nodes get
        the eager neighbour repair only — the successor lists and
        predecessors of the ring-adjacent window are recomputed (what
        ``stabilize`` converges to), while every other node's fingers
        stay as they are.  A survivor's finger that should now name the
        newcomer keeps pointing at the next node along instead, which
        routing tolerates (the candidate filter never overshoots a key),
        so placement stays exact at the cost of the occasional extra hop.
        """
        if node_id in self.nodes:
            raise ValueError(f"node {self.space.format_id(node_id)} already in ring")
        if not self.space.contains(node_id):
            raise ValueError("node id outside id space")
        new = ChordNode(node_id, self.space)
        self.nodes[node_id] = new
        self._insert_sorted(node_id)
        self.epoch += 1
        self._init_node(new)
        self._repair_window(node_id)
        return new

    def bulk_add_named(self, names: list[str]) -> list[ChordNode]:
        """Add many named nodes at once, materialising the converged ring."""
        created: list[ChordNode] = []
        for name in names:
            node_id = self.space.node_id(name)
            if node_id in self.nodes:
                raise ValueError(
                    f"node {self.space.format_id(node_id)} already in ring"
                )
            if not self.space.contains(node_id):
                raise ValueError("node id outside id space")
            node = ChordNode(node_id, self.space)
            self.nodes[node_id] = node
            created.append(node)
        self._sorted_ids = sorted(self.nodes)
        self.epoch += len(created)
        for node in self.nodes.values():
            self._init_node(node)
        return created

    def fail(self, node_id: int) -> None:
        """Remove a node abruptly.

        Successor lists and predecessors of the affected ring window are
        repaired eagerly (routing correctness rests on them); fingers
        naming the dead node are left stale and repaired lazily when a
        route trips over them (:meth:`_on_stale`).
        """
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {self.space.format_id(node_id)}")
        del self.nodes[node_id]
        self._remove_sorted(node_id)
        self.epoch += 1
        if not self.nodes:
            return
        self._repair_window(node_id)

    def _repair_window(self, node_id: int) -> None:
        """Eagerly refresh neighbour state around a membership change.

        The nodes whose successor list or predecessor can name (or
        should now name) ``node_id`` are its ``r`` ring predecessors and
        its immediate successor; recompute just that window from the
        live ring.
        """
        ids = self._sorted_ids
        n = len(ids)
        self._successor_repairs += 1
        idx = bisect.bisect_left(ids, node_id)
        window = min(self.successor_list_size + 1, n)
        seen: set[int] = set()
        for off in range(window):
            for nid in (ids[(idx - 1 - off) % n], ids[(idx + off) % n]):
                if nid not in seen:
                    seen.add(nid)
                    self._neighbour_state(self.nodes[nid])

    # -- placement --------------------------------------------------------

    def owner_of(self, key: int) -> int:
        """Chord's placement rule: ``successor(key)``."""
        if not self._sorted_ids:
            raise RuntimeError("chord overlay is empty")
        return self._successor_id(key)

    def bulk_owner_of(self, keys: np.ndarray) -> list[int]:
        """Vectorised ``successor(key)`` via one searchsorted pass."""
        ids = self.node_ids()
        if not ids:
            raise RuntimeError("chord overlay is empty")
        arr = np.empty(len(ids), dtype=object)
        arr[:] = ids
        keys = np.asarray(keys, dtype=object)
        pos = np.searchsorted(arr, keys, side="left")
        return arr[pos % len(ids)].tolist()

    def neighbourhood(self, node_id: int) -> list[int]:
        """Chord's repair/replica neighbourhood: the successor list
        (nearest clockwise first) — where Chord stores its replicas."""
        return list(self.nodes[node_id].successors)

    # -- routing ----------------------------------------------------------

    def expected_diameter(self) -> int:
        """Finger routing halves the remaining distance per hop:
        ``ceil(log2 N)``."""
        n = len(self.nodes)
        if n <= 1:
            return 1
        return max(1, math.ceil(math.log2(n)))

    def _route_decision(self, current: int, key: int) -> tuple[str, int | None]:
        """Greedy Chord forwarding with local information only.

        Deliver when the key falls in ``(predecessor, current]``;
        otherwise forward to the known node (fingers + successors) that
        makes the most clockwise progress *without overshooting* the
        key, falling back to the immediate successor — which owns the
        key whenever no closer candidate exists.
        """
        node = self.nodes[current]
        me = node.node_id
        if key == me or node.predecessor is None:
            return "deliver", None
        if self._in_cw_interval(key, node.predecessor, me):
            return "deliver", None
        size = self.space.size
        span = (key - me) % size  # clockwise distance to the key
        best: int | None = None
        best_d = 0
        for cand in node.successors:
            d = (cand - me) % size
            if 0 < d <= span and d > best_d:
                best, best_d = cand, d
        for cand in node.fingers:
            if cand is None:
                continue
            d = (cand - me) % size
            if 0 < d <= span and d > best_d:
                best, best_d = cand, d
        if best is not None:
            return "forward", best
        # No known node inside (me, key]: the immediate successor is the
        # key's owner (key in (me, successor)).
        return "forward", node.successors[0]

    def _on_stale(self, current: int, stale_id: int) -> None:
        """Lazy repair at route time: the hook Chord's stale fingers heal
        through.

        Every finger slot naming ``stale_id`` is recomputed from the
        live ring; if the successor list names it too (possible only
        when membership changed since the eager window repair ran — e.g.
        a routing loop dropped a live-but-visited node), the neighbour
        state is rebuilt as well.
        """
        node = self.nodes[current]
        repaired = False
        for i, f in enumerate(node.fingers):
            if f == stale_id:
                target = self._successor_id(
                    (node.node_id + (1 << i)) % self.space.size
                )
                node.fingers[i] = target if target != node.node_id else None
                self._finger_repairs += 1
                repaired = True
        if stale_id in node.successors or node.predecessor == stale_id:
            self._neighbour_state(node)
            self._successor_repairs += 1
            repaired = True
        if not repaired:
            # Routing looped through a node known only transitively; drop
            # nothing but refresh fingers so the retried decision differs.
            self._finger_state(node)
            self._finger_repairs += 1

    def repair_counts(self) -> dict[str, int]:
        return {
            "finger_repairs": self._finger_repairs,
            "successor_repairs": self._successor_repairs,
        }

    # -- convenience ------------------------------------------------------

    @classmethod
    def build(
        cls,
        names: list[str] | int,
        space: IdSpace | None = None,
        successor_list_size: int = DEFAULT_SUCCESSOR_LIST_SIZE,
        name_prefix: str = "cache",
    ) -> "ChordOverlay":
        """Construct a ring by joining nodes one at a time."""
        overlay = cls(space=space, successor_list_size=successor_list_size)
        if isinstance(names, int):
            names = [f"{name_prefix}-{i}" for i in range(names)]
        for name in names:
            overlay.add_named(name)
        return overlay
