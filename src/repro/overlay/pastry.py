"""Pastry node state: routing table and leaf set.

Implements the per-node state of the Pastry overlay (Rowstron & Druschel,
Middleware 2001) that the paper uses to federate client browser caches into
a P2P client cache (§4.1):

* **routing table** — ``ndigits`` rows by ``2**b`` columns; entry
  ``(r, c)`` holds a node whose id shares the first ``r`` digits with this
  node's id and whose digit ``r`` equals ``c``.  Prefix routing resolves at
  least one digit per hop, giving ``ceil(log_{2**b} N)`` expected hops.
* **leaf set** — the ``l`` nodes numerically closest to this node
  (``l/2`` on each side of the ring).  The leaf set both terminates routing
  and defines the replica/diversion neighbourhood used by Hier-GD's object
  diversion (§4.3).

A :class:`PastryNode` is pure state plus *local* decisions (next hop for a
key); membership and message movement live in
:mod:`repro.overlay.network`.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field

from .id_space import IdSpace

__all__ = ["DEFAULT_LEAF_SET_SIZE", "LeafSet", "RoutingTable", "PastryNode"]

#: Pastry's typical leaf-set size (the paper quotes l = 16, §4.3).
DEFAULT_LEAF_SET_SIZE = 16


class LeafSet:
    """The ``l`` nodes with ids numerically closest to ``owner``.

    Maintained as two sorted-by-ring-proximity lists: ``smaller`` (counter
    clockwise neighbours) and ``larger`` (clockwise neighbours), each at
    most ``l/2`` long, with parallel distance lists so an insertion is a
    single bisect instead of a sort-per-add.  Distances on one side are
    unique (the cw distance from a fixed owner is injective), so bisect
    insertion reproduces the previous stable-sort order exactly.
    """

    __slots__ = ("owner", "half", "space", "smaller", "larger", "_sdist", "_ldist")

    def __init__(self, owner: int, size: int, space: IdSpace) -> None:
        if size < 2 or size % 2 != 0:
            raise ValueError("leaf set size must be an even integer >= 2")
        self.owner = owner
        self.half = size // 2
        self.space = space
        self.smaller: list[int] = []  # ascending ccw distance from owner
        self.larger: list[int] = []  # ascending cw distance from owner
        self._sdist: list[int] = []  # ccw distances parallel to smaller
        self._ldist: list[int] = []  # cw distances parallel to larger

    def members(self) -> list[int]:
        """All leaf-set members (no particular order, owner excluded)."""
        return self.smaller + self.larger

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.smaller or node_id in self.larger

    def __len__(self) -> int:
        return len(self.smaller) + len(self.larger)

    def add(self, node_id: int) -> None:
        """Consider ``node_id`` for membership on its side of the ring."""
        if node_id == self.owner or node_id in self:
            return
        cw = (node_id - self.owner) % self.space.size
        ccw = self.space.size - cw
        if cw <= ccw:
            self._insert(self.larger, self._ldist, node_id, cw)
        else:
            self._insert(self.smaller, self._sdist, node_id, ccw)

    def _insert(self, side: list[int], dists: list[int], node_id: int, dist: int) -> None:
        i = bisect_left(dists, dist)
        side.insert(i, node_id)
        dists.insert(i, dist)
        if len(side) > self.half:
            side.pop()
            dists.pop()

    def remove(self, node_id: int) -> bool:
        """Remove a (failed or departed) node; True if it was a member."""
        for side, dists in ((self.smaller, self._sdist), (self.larger, self._ldist)):
            try:
                i = side.index(node_id)
            except ValueError:
                continue
            side.pop(i)
            dists.pop(i)
            return True
        return False

    def covers(self, key: int) -> bool:
        """True if ``key`` falls within the leaf-set's ring segment.

        Pastry terminates routing when the key lies between the extreme
        leaf-set members; the numerically closest node in the set (or the
        owner) is then the destination.  An incomplete side (fewer than
        ``l/2`` entries) means this node sees the whole ring segment on
        that side, so coverage is conservatively granted — that keeps tiny
        overlays (N <= l) correct.
        """
        if not self.smaller and not self.larger:
            return True
        lo = self.smaller[-1] if len(self.smaller) == self.half else None
        hi = self.larger[-1] if len(self.larger) == self.half else None
        if lo is None and hi is None:
            return True
        cw_key = self.space.cw_distance(self.owner, key)
        ccw_key = self.space.size - cw_key
        if cw_key <= ccw_key:
            return hi is None or cw_key <= self.space.cw_distance(self.owner, hi)
        return lo is None or ccw_key <= self.space.size - self.space.cw_distance(self.owner, lo)

    def closest_to(self, key: int) -> int:
        """Member (or owner) numerically closest to ``key``."""
        best = self.owner
        best_d = self.space.distance(self.owner, key)
        for node in self.members():
            d = self.space.distance(node, key)
            if d < best_d or (d == best_d and node < best):
                best, best_d = node, d
        return best


class RoutingTable:
    """Pastry prefix routing table: ``ndigits`` rows × ``2**b`` columns."""

    __slots__ = ("owner", "space", "rows")

    def __init__(self, owner: int, space: IdSpace) -> None:
        self.owner = owner
        self.space = space
        self.rows: list[list[int | None]] = [
            [None] * space.digit_base for _ in range(space.ndigits)
        ]
        # The column matching the owner's own digit in each row is by
        # definition the owner itself; keep it None (never routed to).

    def entry(self, row: int, col: int) -> int | None:
        return self.rows[row][col]

    def consider(self, node_id: int, prefer=None) -> bool:
        """Offer ``node_id`` for the (single) slot it is eligible for.

        Returns True if the table changed.  The eligible slot is row
        ``p`` = shared-prefix-length(owner, node) and column = node's digit
        ``p``.  When the slot is occupied, ``prefer(candidate, incumbent)``
        decides whether to replace — Pastry's locality heuristic supplies
        a network-proximity comparison there; without one the incumbent is
        kept for determinism.
        """
        if node_id == self.owner:
            return False
        p = self.space.prefix_len(self.owner, node_id)
        col = self.space.digit(node_id, p)
        incumbent = self.rows[p][col]
        if incumbent is None:
            self.rows[p][col] = node_id
            return True
        if prefer is not None and incumbent != node_id and prefer(node_id, incumbent):
            self.rows[p][col] = node_id
            return True
        return False

    def replace(self, node_id: int, replacement: int | None) -> bool:
        """Remove ``node_id`` wherever it appears, substituting ``replacement``.

        Used on node failure/departure; the replacement (if any) must be
        eligible for the same slot, otherwise the slot is cleared.
        """
        changed = False
        p = self.space.prefix_len(self.owner, node_id)
        col = self.space.digit(node_id, p)
        if self.rows[p][col] == node_id:
            good = (
                replacement is not None
                and replacement != self.owner
                and self.space.prefix_len(self.owner, replacement) == p
                and self.space.digit(replacement, p) == col
            )
            self.rows[p][col] = replacement if good else None
            changed = True
        return changed

    def remove(self, node_id: int) -> bool:
        return self.replace(node_id, None)

    def next_hop(self, key: int) -> int | None:
        """Routing-table candidate for ``key``: one digit more of prefix."""
        p = self.space.prefix_len(self.owner, key)
        if p >= self.space.ndigits:  # key == owner
            return None
        return self.rows[p][self.space.digit(key, p)]

    def entries(self) -> list[int]:
        """All populated entries (deduplicated, arbitrary order)."""
        seen: set[int] = set()
        for row in self.rows:
            for e in row:
                if e is not None:
                    seen.add(e)
        return list(seen)

    def fill_ratio(self, n_nodes: int) -> float:
        """Fraction of *expected-populated* rows' slots that are filled.

        Only the first ``ceil(log_{2**b} n_nodes)`` rows are expected to
        have entries in a uniform overlay; deeper rows are almost surely
        empty.  Diagnostic only.
        """
        if n_nodes <= 1:
            return 1.0
        rows_expected = max(1, math.ceil(math.log(n_nodes, self.space.digit_base)))
        filled = sum(
            1 for r in range(min(rows_expected, self.space.ndigits)) for e in self.rows[r] if e
        )
        return filled / (rows_expected * self.space.digit_base)


@dataclass
class PastryNode:
    """A Pastry overlay node: id + routing table + leaf set.

    In the reproduction each *client cache* in a client cluster is one
    Pastry node (the paper assigns each client cache a unique ``cacheId``,
    §4.1).
    """

    node_id: int
    space: IdSpace
    leaf_size: int = DEFAULT_LEAF_SET_SIZE
    table: RoutingTable = field(init=False)
    leaves: LeafSet = field(init=False)

    def __post_init__(self) -> None:
        if not self.space.contains(self.node_id):
            raise ValueError(f"node id {self.node_id} outside id space")
        self.table = RoutingTable(self.node_id, self.space)
        self.leaves = LeafSet(self.node_id, self.leaf_size, self.space)

    def learn(self, node_id: int, prefer=None) -> None:
        """Incorporate knowledge of another live node into local state.

        ``prefer`` is the routing-table replacement heuristic (see
        :meth:`RoutingTable.consider`); the leaf set is defined purely by
        id-space proximity and ignores it.
        """
        if node_id == self.node_id:
            return
        self.table.consider(node_id, prefer=prefer)
        self.leaves.add(node_id)

    def forget(self, node_id: int) -> None:
        """Drop a failed/departed node from local state."""
        self.table.remove(node_id)
        self.leaves.remove(node_id)

    def route_decision(self, key: int) -> tuple[str, int | None]:
        """Local Pastry routing decision for ``key``.

        Returns ``("deliver", None)`` when this node is the key's root,
        ``("forward", next_id)`` otherwise.  Follows the three-case Pastry
        procedure: leaf-set delivery, routing-table prefix hop, then the
        rare-case fallback to *any* known node strictly closer to the key.
        """
        if key == self.node_id:
            return "deliver", None
        # Case 1: key inside the leaf-set segment -> numerically closest.
        if self.leaves.covers(key):
            closest = self.leaves.closest_to(key)
            if closest == self.node_id:
                return "deliver", None
            return "forward", closest
        # Case 2: routing table entry with a longer shared prefix.
        hop = self.table.next_hop(key)
        if hop is not None:
            return "forward", hop
        # Case 3 (rare): any known node closer to the key with prefix >= ours.
        my_p = self.space.prefix_len(self.node_id, key)
        my_d = self.space.distance(self.node_id, key)
        best: int | None = None
        best_d = my_d
        for cand in self.known_nodes():
            if self.space.prefix_len(cand, key) >= my_p:
                d = self.space.distance(cand, key)
                if d < best_d:
                    best, best_d = cand, d
        if best is not None:
            return "forward", best
        return "deliver", None  # no better node known: we are the root

    def known_nodes(self) -> list[int]:
        """Union of routing-table entries and leaf-set members."""
        known = set(self.table.entries())
        known.update(self.leaves.members())
        known.discard(self.node_id)
        return list(known)
