"""Structured-overlay substrate: id space, backends, membership, DHT.

The paper (§4.1) federates the browser caches of a client cluster into one
P2P client cache using the Pastry overlay; this subpackage implements that
substrate from scratch, behind a backend contract so the caching schemes
above are overlay-agnostic:

- :mod:`repro.overlay.id_space` — the circular 128-bit identifier space.
- :mod:`repro.overlay.contract` — the :class:`OverlayBackend` contract
  (membership, ownership, routing, neighbourhood) every backend satisfies.
- :mod:`repro.overlay.pastry` — Pastry routing table + leaf set per node.
- :mod:`repro.overlay.network` — the Pastry backend: membership,
  join/failure repair, prefix routing.
- :mod:`repro.overlay.chord` — the Chord backend: successor placement,
  finger-table routing, lazy finger repair.
- :mod:`repro.overlay.factory` — config → backend selection.
- :mod:`repro.overlay.dht` — objectId → owning cacheId placement.
- :mod:`repro.overlay.placement` — vectorised whole-table placement
  (the hot-path engine's precomputed object → owner maps).
"""

from .chord import DEFAULT_SUCCESSOR_LIST_SIZE, ChordNode, ChordOverlay
from .contract import OverlayBackend, OverlayRoutingError, RouteResult, RouteStats
from .coords import coords_for_name, path_distance, torus_distance
from .dht import Dht
from .factory import OVERLAY_BACKENDS, make_overlay
from .id_space import (
    IdSpace,
    node_id_from_name,
    object_id_for_url,
    ring_distance,
    shared_prefix_len,
)
from .network import Overlay
from .pastry import DEFAULT_LEAF_SET_SIZE, LeafSet, PastryNode, RoutingTable
from .placement import build_owner_table, object_ids_for_urls

__all__ = [
    "coords_for_name",
    "path_distance",
    "torus_distance",
    "Dht",
    "IdSpace",
    "node_id_from_name",
    "object_id_for_url",
    "ring_distance",
    "shared_prefix_len",
    "OverlayBackend",
    "OverlayRoutingError",
    "Overlay",
    "ChordOverlay",
    "ChordNode",
    "RouteResult",
    "RouteStats",
    "OVERLAY_BACKENDS",
    "make_overlay",
    "DEFAULT_LEAF_SET_SIZE",
    "DEFAULT_SUCCESSOR_LIST_SIZE",
    "LeafSet",
    "PastryNode",
    "RoutingTable",
    "build_owner_table",
    "object_ids_for_urls",
]
