"""Pastry overlay substrate: id space, per-node state, membership, DHT.

The paper (§4.1) federates the browser caches of a client cluster into one
P2P client cache using the Pastry overlay; this subpackage implements that
substrate from scratch:

- :mod:`repro.overlay.id_space` — the circular 128-bit identifier space.
- :mod:`repro.overlay.pastry` — routing table + leaf set per node.
- :mod:`repro.overlay.network` — membership, join/failure repair, routing.
- :mod:`repro.overlay.dht` — objectId → owning cacheId placement.
- :mod:`repro.overlay.placement` — vectorised whole-table placement
  (the hot-path engine's precomputed object → owner maps).
"""

from .coords import coords_for_name, path_distance, torus_distance
from .dht import Dht
from .id_space import (
    IdSpace,
    node_id_from_name,
    object_id_for_url,
    ring_distance,
    shared_prefix_len,
)
from .network import Overlay, RouteResult, RouteStats
from .pastry import DEFAULT_LEAF_SET_SIZE, LeafSet, PastryNode, RoutingTable
from .placement import build_owner_table, object_ids_for_urls

__all__ = [
    "coords_for_name",
    "path_distance",
    "torus_distance",
    "Dht",
    "IdSpace",
    "node_id_from_name",
    "object_id_for_url",
    "ring_distance",
    "shared_prefix_len",
    "Overlay",
    "RouteResult",
    "RouteStats",
    "DEFAULT_LEAF_SET_SIZE",
    "LeafSet",
    "PastryNode",
    "RoutingTable",
    "build_owner_table",
    "object_ids_for_urls",
]
