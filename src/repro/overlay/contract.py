"""The backend contract every structured overlay must satisfy.

The paper builds its P2P client cache on Pastry (§4.1), but nothing in
the caching schemes above depends on *prefix* routing specifically —
they need exactly the surface captured by :class:`OverlayBackend`:

* **membership** — :meth:`~OverlayBackend.add_named` /
  :meth:`~OverlayBackend.bulk_add_named` joins,
  :meth:`~OverlayBackend.fail` / :meth:`~OverlayBackend.leave`
  departures, an :attr:`~OverlayBackend.epoch` counter bumped on every
  change (the DHT layer and the hot-path placement tables key their
  memos off it);
* **placement** — :meth:`~OverlayBackend.owner_of` maps a key to the
  live node that stores it under the backend's ownership rule
  (numerically-closest for Pastry, successor-of-key for Chord), and
  :meth:`~OverlayBackend.bulk_owner_of` is the vectorised form the
  precomputed owner tables use;
* **routing** — :meth:`~OverlayBackend.route` moves a message hop by
  hop through the backend's own geometry, accumulating
  :class:`RouteStats`; delivery must agree with :meth:`owner_of`
  (asserted by the sampled placement validator);
* **neighbourhood** — :meth:`~OverlayBackend.neighbourhood` is the set
  of nodes adjacent to an owner in the backend's repair/replica
  structure (Pastry's leaf set, Chord's successor list), which Hier-GD
  uses for object diversion and PAST-style replication (§4.3).

The shared hop-by-hop driver lives here too: concrete backends supply a
*local* per-node decision (:meth:`~OverlayBackend._route_decision`) and
a stale-entry repair hook (:meth:`~OverlayBackend._on_stale`), and
:meth:`~OverlayBackend.route` runs the loop with a forwarding bound
derived from the backend's expected O(log N) diameter — tripping it
raises :class:`OverlayRoutingError` naming the backend and the route.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .id_space import IdSpace

__all__ = [
    "RouteResult",
    "RouteStats",
    "OverlayRoutingError",
    "OverlayBackend",
]


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing one message.

    Attributes
    ----------
    root:
        NodeId of the delivery node (the key's root).
    hops:
        Number of forwarding steps taken (0 when the origin is the root).
    path:
        NodeIds visited, origin first, root last.
    """

    root: int
    hops: int
    path: tuple[int, ...]


@dataclass
class RouteStats:
    """Aggregate routing statistics: hops and physical route stretch."""

    messages: int = 0
    total_hops: int = 0
    max_hops: int = 0
    hop_histogram: dict[int, int] = field(default_factory=dict)
    #: Physical (proximity-metric) distance travelled along all paths.
    total_path_distance: float = 0.0
    #: Direct origin→root distance summed over all messages.
    total_direct_distance: float = 0.0

    def record(self, hops: int, path_distance: float = 0.0, direct: float = 0.0) -> None:
        self.messages += 1
        self.total_hops += hops
        if hops > self.max_hops:
            self.max_hops = hops
        self.hop_histogram[hops] = self.hop_histogram.get(hops, 0) + 1
        self.total_path_distance += path_distance
        self.total_direct_distance += direct

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.messages if self.messages else 0.0

    @property
    def mean_stretch(self) -> float:
        """Route stretch: path distance over direct distance (>= 1).

        Pastry's locality heuristic exists to keep this small; compare an
        overlay built with ``proximity=True`` against one without.
        """
        if self.total_direct_distance <= 0:
            return 1.0
        return self.total_path_distance / self.total_direct_distance


class OverlayRoutingError(RuntimeError):
    """A route exceeded the backend's derived forwarding bound.

    Healthy structured overlays converge in O(log N) hops; exceeding the
    bound (which already allows generous slack for repair retries) means
    the backend's routing state is corrupt.  The message names the
    backend, the key, the bound and the path walked so far.
    """

    def __init__(
        self,
        backend: str,
        key: str,
        bound: int,
        diameter: int,
        n_nodes: int,
        path: tuple[int, ...],
        format_id,
    ) -> None:
        self.backend = backend
        self.key = key
        self.bound = bound
        self.path = path
        shown = [format_id(p) for p in path[:8]]
        if len(path) > 8:
            shown.append(f"... ({len(path)} nodes)")
        super().__init__(
            f"{backend} routing for key {key} exceeded the derived bound of "
            f"{bound} hops (expected diameter {diameter} for {n_nodes} live "
            f"nodes) — corrupt routing state; path: {' -> '.join(shown)}"
        )


class OverlayBackend(ABC):
    """Contract between the caching schemes and a structured overlay.

    Concrete backends (:class:`~repro.overlay.network.Overlay` for
    Pastry, :class:`~repro.overlay.chord.ChordOverlay` for Chord) own a
    ``nodes`` mapping of live node state, a globally sorted id list
    (``_sorted_ids`` — the simulator's omniscient membership view, which
    repair converges against), a :class:`RouteStats` accumulator and the
    :attr:`epoch` counter.
    """

    #: Backend name, used in diagnostics, result extras and profiling.
    name: str = "overlay"

    space: IdSpace
    stats: RouteStats
    #: Bumped on every membership change; DHT caches key off this.
    epoch: int
    nodes: dict[int, Any]
    _sorted_ids: list[int]

    # -- membership -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def node(self, node_id: int) -> Any:
        """Live node state for ``node_id`` (KeyError if not live)."""
        return self.nodes[node_id]

    def node_ids(self) -> list[int]:
        """Live node ids in ascending order (a copy)."""
        return list(self._sorted_ids)

    @abstractmethod
    def add_named(self, name: str) -> Any:
        """Create and join a node whose id derives from ``name``.

        Returns the new node object (it exposes ``node_id``).
        """

    @abstractmethod
    def bulk_add_named(self, names: list[str]) -> list[Any]:
        """Add many named nodes at once, materialising the converged state."""

    @abstractmethod
    def fail(self, node_id: int) -> None:
        """Remove a node abruptly and repair the survivors' state."""

    def leave(self, node_id: int) -> None:
        """Graceful departure (state repair identical to failure here)."""
        self.fail(node_id)

    # -- placement --------------------------------------------------------

    @abstractmethod
    def owner_of(self, key: int) -> int:
        """NodeId of the live node that owns ``key`` under this backend's
        placement rule.  Routing any key must deliver at this node."""

    @abstractmethod
    def bulk_owner_of(self, keys: np.ndarray) -> list[int]:
        """Vectorised :meth:`owner_of` over an object-dtype key array."""

    @abstractmethod
    def neighbourhood(self, node_id: int) -> list[int]:
        """Nodes adjacent to ``node_id`` in the backend's repair/replica
        structure (Pastry: leaf set; Chord: successor list).

        Hier-GD draws its §4.3 diversion and replication candidates from
        this set; the iteration order is part of the contract (it fixes
        which candidate wins free-space ties).
        """

    # -- routing ----------------------------------------------------------

    @abstractmethod
    def expected_diameter(self) -> int:
        """Expected routing diameter (hops) at the current size — the
        backend's O(log N) bound with its own base."""

    @property
    def max_route_hops(self) -> int:
        """Forwarding bound derived from the expected O(log N) diameter.

        The route loop also burns an iteration per stale-entry repair
        retry (a forget-and-retry does not advance the path), so the
        bound carries a generous multiple plus a floor rather than the
        diameter itself.  A healthy overlay never comes close; tripping
        the bound raises :class:`OverlayRoutingError`.
        """
        return 16 + 8 * max(1, self.expected_diameter())

    @abstractmethod
    def _route_decision(self, current: int, key: int) -> tuple[str, int | None]:
        """Local routing decision at node ``current`` for ``key``:
        ``("deliver", None)`` or ``("forward", next_id)``."""

    @abstractmethod
    def _on_stale(self, current: int, stale_id: int) -> None:
        """Repair ``current``'s local state after forwarding to
        ``stale_id`` failed (dead node or routing loop): drop the entry
        and refill from live state so the retried decision progresses."""

    def _record_route(self, result: RouteResult) -> None:
        """Fold one delivered route into :attr:`stats` (backends with a
        physical-distance model override to add stretch accounting)."""
        self.stats.record(result.hops)

    def route(self, key: int, start: int | None = None, record: bool = True) -> RouteResult:
        """Route a message for ``key`` from ``start`` (default: any node).

        ``record=False`` routes without touching :attr:`stats` — used by
        placement-table validation, which must not perturb the sampled
        hop statistics.
        """
        return self._route_internal(key, start, record=record)

    def _route_internal(self, key: int, start: int | None, record: bool) -> RouteResult:
        if not self.nodes:
            raise RuntimeError(f"{self.name} overlay is empty")
        if start is None:
            start = self._sorted_ids[0]
        if start not in self.nodes:
            raise KeyError(f"start node {self.space.format_id(start)} not live")
        current = start
        path = [current]
        visited = {current}
        bound = self.max_route_hops
        for _ in range(bound):
            action, nxt = self._route_decision(current, key)
            if action == "deliver":
                break
            assert nxt is not None
            if nxt not in self.nodes or nxt in visited:
                # Stale entry (failed node) or loop: local repair — drop
                # the bad entry and retry the decision from the same node.
                self._on_stale(current, nxt)
                continue
            current = nxt
            path.append(current)
            visited.add(current)
        else:
            raise OverlayRoutingError(
                backend=self.name,
                key=self.space.format_id(key),
                bound=bound,
                diameter=self.expected_diameter(),
                n_nodes=len(self),
                path=tuple(path),
                format_id=self.space.format_id,
            )
        result = RouteResult(root=current, hops=len(path) - 1, path=tuple(path))
        if record:
            self._record_route(result)
        return result

    # -- diagnostics ------------------------------------------------------

    def repair_counts(self) -> dict[str, int]:
        """Cumulative repair-event counters (backend-specific names),
        surfaced by ``--profile`` alongside routing statistics."""
        return {}

    # -- shared helpers for concrete backends -----------------------------

    def _insert_sorted(self, node_id: int) -> None:
        bisect.insort(self._sorted_ids, node_id)

    def _remove_sorted(self, node_id: int) -> None:
        idx = bisect.bisect_left(self._sorted_ids, node_id)
        self._sorted_ids.pop(idx)
