"""Entry point: run any registered scheme under a fault plan.

Dispatch rules keep fault-free results byte-identical to the plain code
path (the acceptance bar for the subsystem):

* a zero plan (:meth:`FaultPlan.is_zero`) routes straight to
  :func:`repro.core.run.run_scheme` — the faulty classes are never even
  constructed, so no extra counters, no RNG churn, nothing;
* schemes without a faultable cooperation path (NC and the other upper
  bounds whose remote tier is an abstraction this PR does not degrade)
  also run plain at *any* fault rate.  NC in particular is fault-free by
  construction — its client → proxy → origin path has no cooperation
  link — which is what anchors the "degrades toward NC, never below"
  claim of the robustness experiment.
"""

from __future__ import annotations

from ..core.config import SimulationConfig
from ..core.metrics import SchemeResult
from ..core.run import generate_workloads, run_scheme
from ..workload import Trace
from .plan import NO_FAULTS, FaultPlan
from .schemes import FaultyFcEcScheme, FaultyFcScheme, FaultyHierGdScheme

__all__ = ["FAULTY_SCHEMES", "run_scheme_with_faults"]

#: Scheme name -> fault-aware class; everything else runs plain.
FAULTY_SCHEMES = {
    "hier-gd": FaultyHierGdScheme,
    "fc": FaultyFcScheme,
    "fc-ec": FaultyFcEcScheme,
}


def run_scheme_with_faults(
    name: str,
    config: SimulationConfig,
    traces: list[Trace] | None = None,
    plan: FaultPlan | None = None,
    seed: int = 0,
) -> SchemeResult:
    """Simulate ``name`` under ``plan`` (``None``/zero plan: plain run)."""
    plan = NO_FAULTS if plan is None else plan
    if plan.is_zero() or name not in FAULTY_SCHEMES:
        return run_scheme(name, config, traces, seed=seed)
    if traces is None:
        traces = generate_workloads(config, seed=seed)
    scheme = FAULTY_SCHEMES[name](config, traces, plan)
    return scheme.run()
