"""Entry point: run any registered scheme under a fault plan.

Fault semantics no longer live in scheme subclasses: a faulty run is the
*same* scheme instance carrying a
:class:`~repro.protocol.transport.FaultTransport`, assembled here per
scheme.  Dispatch rules keep fault-free results byte-identical to the
plain code path (the acceptance bar for the subsystem):

* a zero plan (:meth:`FaultPlan.is_zero`) routes straight to
  :func:`repro.core.run.run_scheme` — no fault layer is even
  constructed, so no extra counters, no RNG churn, nothing;
* schemes without a faultable cooperation path (NC and the other upper
  bounds whose remote tier is an abstraction fault injection does not
  degrade) also run plain at *any* fault rate.  NC in particular is
  fault-free by construction — its client → proxy → origin path has no
  cooperation link — which is what anchors the "degrades toward NC,
  never below" claim of the robustness experiment.

The plan also carries the *response* to its faults: per-link
:class:`~repro.protocol.policy.RetryPolicy` strategies
(``plan.policies``), honoured by the assembled
:class:`~repro.protocol.transport.FaultTransport` on every path this
entry point dispatches to (sync, async backend, recorded).  A plan
without policies runs the default exponential ladder, byte-identical
to the pre-policy builds.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.churn import HierGdChurnScheme
from ..core.config import SimulationConfig
from ..core.metrics import SchemeResult
from ..core.run import generate_workloads, run_scheme, with_backend
from ..core.schemes.full import FcScheme
from ..core.schemes.full_ec import FcEcScheme
from ..core.schemes.squirrel import SquirrelScheme
from ..core.simulator import CachingScheme
from ..protocol.trace import active_trace_recorder
from ..protocol.transport import FaultTransport, Transport
from ..workload import Trace
from .plan import NO_FAULTS, FaultPlan
from .poisson import poisson_churn_events

__all__ = ["FAULTY_SCHEMES", "run_scheme_with_faults"]


def _fault_transport(
    config: SimulationConfig, plan: FaultPlan, scope: str
) -> FaultTransport:
    return FaultTransport(Transport(config.network), plan, scope=scope)


def _faulty_hiergd(
    config: SimulationConfig,
    traces: list[Trace],
    plan: FaultPlan,
    transport: Transport | None = None,
) -> CachingScheme:
    """Hier-GD under the full fault model.

    Builds on the churn scheme (reference engine, lazily repaired
    directories, membership events) with a fault transport carrying
    message-level faults on the three cooperation links, stale
    directories beyond Bloom false positives (lossy eviction notices),
    unresponsive push targets — plus Poisson churn generated from
    ``plan.churn_rate``, subsuming the hand-written event lists.
    Unresponsiveness bites the *push* protocol only: within the own
    cluster the proxy redirects its own client over the LAN, which the
    firewall story (§4.3) does not block.

    ``transport`` substitutes the whole carrier stack (a recording
    wrapper, a replay transport); ``None`` builds the standard fault
    transport.  Churn events are regenerated from the plan either way —
    they are a pure function of it, which is what lets a replayed run
    reconstruct them without the wire trace carrying membership.
    """
    events = poisson_churn_events(
        plan,
        n_requests=sum(len(t) for t in traces),
        n_clusters=config.n_proxies,
        n_clients=config.sizing_for(traces[0]).n_clients,
    )
    if transport is None:
        transport = _fault_transport(config, plan, "hier-gd")
    scheme = HierGdChurnScheme(config, traces, events, transport=transport)
    # Report as the scheme under test, not the churn-harness subclass.
    scheme.name = "hier-gd"
    return scheme


def _faulty_fc(
    config: SimulationConfig,
    traces: list[Trace],
    plan: FaultPlan,
    transport: Transport | None = None,
) -> CachingScheme:
    if transport is None:
        transport = _fault_transport(config, plan, "fc")
    return FcScheme(config, traces, transport=transport)


def _faulty_fc_ec(
    config: SimulationConfig,
    traces: list[Trace],
    plan: FaultPlan,
    transport: Transport | None = None,
) -> CachingScheme:
    if transport is None:
        transport = _fault_transport(config, plan, "fc-ec")
    return FcEcScheme(config, traces, transport=transport)


def _faulty_squirrel(
    config: SimulationConfig,
    traces: list[Trace],
    plan: FaultPlan,
    transport: Transport | None = None,
) -> CachingScheme:
    if transport is None:
        transport = _fault_transport(config, plan, "squirrel")
    return SquirrelScheme(config, traces, transport=transport)


#: Scheme name -> builder assembling the scheme for a non-zero plan
#: (everything else runs plain).  The optional ``transport`` replaces
#: the standard fault stack — the seam the record/replay harness uses.
FAULTY_SCHEMES: dict[
    str,
    Callable[..., CachingScheme],
] = {
    "hier-gd": _faulty_hiergd,
    "fc": _faulty_fc,
    "fc-ec": _faulty_fc_ec,
    "squirrel": _faulty_squirrel,
}


def run_scheme_with_faults(
    name: str,
    config: SimulationConfig,
    traces: list[Trace] | None = None,
    plan: FaultPlan | None = None,
    seed: int = 0,
    backend: str = "sync",
) -> SchemeResult:
    """Simulate ``name`` under ``plan`` (``None``/zero plan: plain run).

    Inside a :func:`repro.protocol.trace.recording_traces` block the
    fault stack is wrapped in a recording layer, so faulty runs record
    exactly like plain ones.  As with :func:`~repro.core.run.run_scheme`,
    callers that supply ``traces`` must pass the ``seed`` they were
    generated from for the recording header to be replayable.
    ``backend="async"`` drives the stack through the awaitable ladder
    path on the simulated clock, byte-identical to the synchronous run.
    """
    plan = NO_FAULTS if plan is None else plan
    if plan.is_zero() or name not in FAULTY_SCHEMES:
        return run_scheme(name, config, traces, seed=seed, backend=backend)
    if traces is None:
        traces = generate_workloads(config, seed=seed)
    recorder = active_trace_recorder()
    if recorder is None:
        carrier = with_backend(_fault_transport(config, plan, name), backend)
        return FAULTY_SCHEMES[name](config, traces, plan, transport=carrier).run()
    recording = recorder.open(
        name, config, seed, plan, _fault_transport(config, plan, name)
    )
    carrier = with_backend(recording, backend)
    scheme = FAULTY_SCHEMES[name](config, traces, plan, transport=carrier)
    recording.attach(scheme)
    result = None
    try:
        result = scheme.run()
    finally:
        recorder.close(recording, result)
    return result
