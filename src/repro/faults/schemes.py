"""Fault-aware scheme variants: timeout → retry → fallback semantics.

The paper assumes every cooperation mechanism succeeds; these subclasses
give the Hier-GD protocol chain and the FC/FC-EC cooperation paths
honest failure semantics under a :class:`~repro.faults.plan.FaultPlan`:

* every message over a cooperation link can be lost
  (:meth:`FaultInjector.link_ok`); a lost message costs the sender one
  timeout — one link RTT, charged through
  :meth:`~repro.core.simulator.CachingScheme.add_extra_latency`, the
  same accounting the Bloom-false-positive charge uses;
* after a timeout the sender retries, up to ``plan.max_retries`` times,
  with the timeout inflated by ``plan.backoff_base`` per retry
  (exponential backoff — each wasted round is charged);
* when the retry budget is exhausted the request *falls back* to the
  next tier of the Hier-GD chain (own P2P → cooperating proxies → push →
  origin), ultimately to the origin server, which never fails.  The
  fallback ladder is why a faulty Hier-GD degrades toward NC instead of
  below it: NC's path (client → proxy → origin) carries no cooperation
  link, so it is fault-free by construction.

Everything is surfaced in ``SchemeResult.messages`` under the
:data:`~repro.core.metrics.FAULT_COUNTERS` keys.

The classes are intentionally *not* in the scheme registry: construct
them through :func:`repro.faults.run.run_scheme_with_faults`, which
dispatches zero plans to the plain code path so fault-free results stay
byte-identical to runs without this subsystem.
"""

from __future__ import annotations

from ..core.churn import HierGdChurnScheme
from ..core.config import SimulationConfig
from ..core.directory import LossyDirectory
from ..core.hiergd import _ClusterState
from ..core.metrics import FAULT_COUNTERS
from ..core.schemes.full import FcScheme
from ..core.schemes.full_ec import FcEcScheme
from ..netmodel import (
    FAULT_LINKS,
    LINK_P2P,
    LINK_PROXY,
    LINK_PUSH,
    TIER_COOP_P2P,
    TIER_COOP_PROXY,
    TIER_LOCAL_P2P,
    TIER_LOCAL_PROXY,
    TIER_SERVER,
)
from ..workload import Trace
from .injector import FaultInjector
from .plan import FaultPlan
from .poisson import poisson_churn_events

__all__ = ["FaultyHierGdScheme", "FaultyFcScheme", "FaultyFcEcScheme"]


class FaultAccountingMixin:
    """Shared timeout/retry/fallback ladder and fault-counter plumbing."""

    def _fault_setup(
        self,
        config: SimulationConfig,
        plan: FaultPlan,
        scope: str,
        msg: dict[str, int] | None = None,
    ) -> None:
        """Attach an injector and zero-init the fault counters.

        ``msg`` lets Hier-GD merge the counters straight into its
        existing protocol-message dict; other schemes get a private dict
        their ``finalize`` folds into the result.
        """
        self._fault_plan = plan
        self._injector = FaultInjector(plan, scope=scope)
        self._link_rtt = {link: config.network.link_rtt(link) for link in FAULT_LINKS}
        target = msg if msg is not None else {}
        for key in FAULT_COUNTERS:
            target.setdefault(key, 0)
        self._fault_msg = target

    def _attempt(self, link: str, force_fail: bool = False) -> bool:
        """One timeout → bounded-retry → give-up ladder over ``link``.

        Returns True when a round eventually succeeds (charging any
        delay inflation), False after the retry budget is spent (the
        caller falls back to the next tier).  Every timed-out round is
        charged one timeout of latency, inflated by the backoff base per
        retry.  ``force_fail`` models a peer that will never answer
        (an unresponsive push target): the full ladder is paid.
        """
        plan = self._fault_plan
        injector = self._injector
        msg = self._fault_msg
        rtt = self._link_rtt[link]
        timeout = rtt
        for attempt in range(plan.max_retries + 1):
            if not force_fail and injector.link_ok(link):
                penalty = injector.delay_penalty(link)
                if penalty:
                    self.add_extra_latency(penalty * rtt)
                return True
            msg["timeouts"] += 1
            self.add_extra_latency(timeout)
            if attempt < plan.max_retries:
                msg["retries"] += 1
                timeout *= plan.backoff_base
        msg["fallbacks"] += 1
        return False


class FaultyHierGdScheme(FaultAccountingMixin, HierGdChurnScheme):
    """Hier-GD under the full fault model.

    Builds on the churn scheme (reference engine, lazily repaired
    directories, membership events) and adds message-level faults on the
    three cooperation links, stale directories beyond Bloom false
    positives (lossy eviction notices), unresponsive push targets, and
    Poisson churn generated from ``plan.churn_rate`` — subsuming the
    hand-written event lists.  Unresponsiveness bites the *push*
    protocol only: within the own cluster the proxy redirects its own
    client over the LAN, which the firewall story (§4.3) does not block.
    """

    name = "hier-gd"

    def __init__(
        self,
        config: SimulationConfig,
        traces: list[Trace],
        plan: FaultPlan,
    ) -> None:
        events = poisson_churn_events(
            plan,
            n_requests=sum(len(t) for t in traces),
            n_clusters=config.n_proxies,
            n_clients=config.sizing_for(traces[0]).n_clients,
        )
        super().__init__(config, traces, events)
        self._fault_setup(config, plan, scope=self.name, msg=self._msg)
        self._exact_dir = config.directory == "exact"
        self._in_eviction = False
        if plan.stale_rate > 0.0:
            for ci, state in enumerate(self.states):
                state.directory = LossyDirectory(
                    state.directory,
                    drop_prob=plan.stale_rate,
                    rng=self._injector.stream("notices", ci),
                )

    # -- lazily repaired lookup (loss-proof repair path) --------------------

    def _locate(
        self, state: _ClusterState, obj: int, owner: int | None = None
    ) -> int | None:
        # Same lazy repair as the churn scheme, but through ``repair()``:
        # the proxy fixing its own directory is local and must not run
        # through the lossy eviction-notice channel.  During eviction
        # handling the locate is only a reachability probe — repairing
        # there would undo the very notice drop being modelled (the
        # proxy can't fix an entry it never learned went stale).
        holder = super(HierGdChurnScheme, self)._locate(state, obj, owner)
        if self._in_eviction:
            return holder
        if holder is None and obj in state.p2p_present:
            state.p2p_present.discard(obj)
        if holder is None and obj in state.directory:
            state.directory.repair(obj)
            self._msg["directory_repairs"] += 1
        return holder

    def _on_client_eviction(self, state: _ClusterState, holder_idx: int, obj: int) -> None:
        self._in_eviction = True
        try:
            super()._on_client_eviction(state, holder_idx, obj)
        finally:
            self._in_eviction = False

    # -- the fault-aware miss chain ----------------------------------------

    def _miss_reference(self, state: _ClusterState, cluster: int, obj: int) -> str:
        msg = self._msg
        # 2. Own P2P client cache, via the (possibly stale) directory.
        if obj in state.directory:
            msg["p2p_lookups"] += 1
            if self._attempt(LINK_P2P):
                holder = self._locate(state, obj)
                if holder is not None:
                    return self._serve_p2p_hit(state, holder, obj)
                # The directory over-claimed: a stale entry (exact) or a
                # false positive (Bloom).  One wasted overlay round,
                # repaired by ``_locate`` above.
                if self._exact_dir:
                    msg["stale_directory_hits"] += 1
                else:
                    msg["directory_false_positives"] += 1
                self.add_extra_latency(self._t_p2p)
            # On ladder exhaustion the redirect is abandoned unserved and
            # the stale entry (if any) survives undetected.

        # 3. Cooperating proxies: their proxy caches first (cheaper) ...
        for other, other_state in enumerate(self.states):
            if other != cluster and other_state.proxy.contains(obj):
                if self._attempt(LINK_PROXY):
                    self._proxy_insert(state, obj, cost=self._t_coop)
                    return TIER_COOP_PROXY
                break  # retry budget spent: fall back a tier, don't re-scan

        # ... then their P2P client caches through the push protocol.
        tier = self._coop_p2p_scan(state, cluster, obj)
        if tier is not None:
            return tier

        # 4. Origin server — the fallback that never fails.
        self._proxy_insert(state, obj, cost=self._t_server)
        return TIER_SERVER

    def _coop_p2p_scan(self, state: _ClusterState, cluster: int, obj: int) -> str | None:
        msg = self._msg
        for other, other_state in enumerate(self.states):
            if other == cluster or obj not in other_state.directory:
                continue
            msg["push_requests"] += 1
            holder = self._locate(other_state, obj)
            if holder is None:
                if self._exact_dir:
                    msg["stale_directory_hits"] += 1
                else:
                    msg["directory_false_positives"] += 1
                self.add_extra_latency(self._t_coop + self._t_p2p)
                continue
            if self._injector.unresponsive(other, holder):
                # Firewalled/hung client: the push request is never
                # answered — the proxy pays the whole timeout ladder.
                self._attempt(LINK_PUSH, force_fail=True)
                msg["failed_pushes"] += 1
                continue
            if self._attempt(LINK_PUSH):
                return self._serve_push_hit(state, other_state, holder, obj)
            msg["failed_pushes"] += 1
        return None

    def finalize(self) -> tuple[dict[str, int], dict[str, float]]:
        messages, extras = super().finalize()
        messages["dropped_eviction_notices"] = sum(
            s.directory.dropped_notices
            for s in self.states
            if isinstance(s.directory, LossyDirectory)
        )
        return messages, extras


class FaultyFcScheme(FaultAccountingMixin, FcScheme):
    """FC with faults on the cooperating-proxy link.

    The coordinated *placement* is an oracle (perfect frequencies), so
    faults bite only the serving path: a remote hit that cannot be
    fetched within the retry budget falls back to the origin server.
    The copy-store bookkeeping is unchanged — the object is fetched and
    placed as planned, just from farther away.
    """

    def __init__(
        self,
        config: SimulationConfig,
        traces: list[Trace],
        plan: FaultPlan,
    ) -> None:
        super().__init__(config, traces)
        self._fault_setup(config, plan, scope=self.name)

    def process(self, cluster: int, client: int, obj: int) -> str:
        if obj in self._local[cluster]:
            return TIER_LOCAL_PROXY
        if obj in self._holders and self._attempt(LINK_PROXY):
            tier = TIER_COOP_PROXY
        else:
            tier = TIER_SERVER
        self._consider_copy(obj, cluster)
        return tier

    def finalize(self) -> tuple[dict[str, int], dict[str, float]]:
        messages, extras = super().finalize()
        messages.update(self._fault_msg)
        extras["extra_latency"] = self.extra_latency
        return messages, extras


class FaultyFcEcScheme(FaultAccountingMixin, FcEcScheme):
    """FC-EC with faults on both cooperation links.

    A remote proxy-tier hit rides the cooperating-proxy link; a remote
    client-tier hit rides the push link (``Tc + Tp2p``).  Local tiers
    (own proxy, own P2P partition) are LAN-side and stay fault-free,
    matching the Hier-GD model where only cooperation links degrade.
    """

    def __init__(
        self,
        config: SimulationConfig,
        traces: list[Trace],
        plan: FaultPlan,
    ) -> None:
        super().__init__(config, traces)
        self._fault_setup(config, plan, scope=self.name)

    def process(self, cluster: int, client: int, obj: int) -> str:
        if obj in self._local[cluster]:
            return (
                TIER_LOCAL_PROXY
                if self._tiers[cluster].in_top(obj)
                else TIER_LOCAL_P2P
            )
        holders = self._holders.get(obj)
        tier = TIER_SERVER
        if holders:
            proxy_side = any(self._tiers[q].in_top(obj) for q in holders)
            if proxy_side:
                if self._attempt(LINK_PROXY):
                    tier = TIER_COOP_PROXY
            elif self._attempt(LINK_PUSH):
                tier = TIER_COOP_P2P
        self._consider_copy(obj, cluster)
        return tier

    def finalize(self) -> tuple[dict[str, int], dict[str, float]]:
        messages, extras = super().finalize()
        messages.update(self._fault_msg)
        extras["extra_latency"] = self.extra_latency
        return messages, extras
