"""Poisson-process churn: membership events as a rate, not a hand list.

``core.churn`` executes explicit :class:`~repro.core.churn.ChurnEvent`
lists — precise but experiment-specific.  Real client populations churn
continuously; this module generates the event list from a single rate
(expected membership events per request, exponentially distributed
inter-arrival times) so a :class:`~repro.faults.plan.FaultPlan` can say
"this much churn" and subsume the hand-written schedules.

The generator tracks live membership per cluster so every emitted event
is valid by construction: a client is never failed twice, a cluster is
never drained below one live client (an empty overlay cannot route), and
a fail of a joined newcomer always follows its join.
"""

from __future__ import annotations

import random

from ..core.churn import ChurnEvent
from .injector import fault_seed
from .plan import FaultPlan

__all__ = ["poisson_churn_events"]


def poisson_churn_events(
    plan: FaultPlan,
    n_requests: int,
    n_clusters: int,
    n_clients: int,
    join_fraction: float = 0.5,
) -> list[ChurnEvent]:
    """Sorted churn events for a run of ``n_requests`` total requests.

    ``join_fraction`` splits events between joins and failures (default
    half/half keeps the population roughly stable).  Deterministic in
    ``plan.seed``; an inactive churn process yields an empty list.
    """
    if plan.churn_rate <= 0.0 or n_requests <= 0 or n_clusters <= 0:
        return []
    if not 0.0 <= join_fraction <= 1.0:
        raise ValueError("join_fraction must be in [0, 1]")
    rng = random.Random(fault_seed(plan.seed, "churn"))
    live = [set(range(n_clients)) for _ in range(n_clusters)]
    next_idx = [n_clients] * n_clusters
    events: list[ChurnEvent] = []
    t = rng.expovariate(plan.churn_rate)
    while t < n_requests:
        at = int(t)
        cluster = rng.randrange(n_clusters)
        if rng.random() < join_fraction:
            events.append(ChurnEvent(at_request=at, kind="join", cluster=cluster))
            live[cluster].add(next_idx[cluster])
            next_idx[cluster] += 1
        elif len(live[cluster]) > 1:
            # Sorted so the victim choice is set-iteration-order-free.
            victim = rng.choice(sorted(live[cluster]))
            live[cluster].discard(victim)
            events.append(
                ChurnEvent(at_request=at, kind="fail", cluster=cluster, client=victim)
            )
        # else: a lone survivor cannot fail — the event is skipped.
        t += rng.expovariate(plan.churn_rate)
    return events
