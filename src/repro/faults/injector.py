"""Deterministic fault draws: named SHA-256 substreams off one seed.

Fault injection must be *replayable*: the same :class:`~repro.faults.
plan.FaultPlan` seed must produce the identical fault sequence whatever
process runs the simulation, so stored results, the determinism guard
and the robustness sweep all agree.  Python's ``hash()`` is salted per
process and the global ``random`` module is ambient state, so neither is
usable; instead every stream derives from the plan seed plus string
labels through SHA-256 (:func:`fault_seed` — the same construction as
``repro.experiments.child_seed``, reimplemented here because the faults
package must stay importable without the experiment layer).

Streams are independent per link and per fault process: whether the
delay process is enabled never shifts the loss draws, so enabling one
fault does not scramble another's sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any

from ..netmodel import FAULT_LINKS, LINK_P2P, LINK_PROXY, LINK_PUSH
from .plan import FaultPlan

__all__ = ["fault_seed", "FaultInjector"]


def fault_seed(base: int, *parts: Any) -> int:
    """Deterministic 63-bit child seed from ``base`` and string labels."""
    canonical = repr((int(base),) + tuple(str(p) for p in parts))
    digest = hashlib.sha256(canonical.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class FaultInjector:
    """Draws fault events for one simulation under one plan.

    ``scope`` namespaces the substreams (e.g. the scheme name) so two
    schemes running under the same plan do not share draw sequences.
    """

    def __init__(self, plan: FaultPlan, scope: str = "") -> None:
        self.plan = plan
        self._scope = scope
        self._loss_prob = {
            LINK_P2P: plan.p2p_loss,
            LINK_PROXY: plan.proxy_loss,
            LINK_PUSH: plan.push_loss,
        }
        self._loss = {
            link: random.Random(fault_seed(plan.seed, scope, "loss", link))
            for link in FAULT_LINKS
        }
        self._delay = {
            link: random.Random(fault_seed(plan.seed, scope, "delay", link))
            for link in FAULT_LINKS
        }
        self._jitter: dict[str, random.Random] = {}

    def loss_uniform(self, link: str) -> float | None:
        """Raw uniform behind one loss draw, or ``None`` when loss is off.

        Loss-free links never consume a draw, so plans differing only in
        *which* links lose keep the other links' sequences aligned.  The
        ladder engine (:func:`~repro.protocol.policy.run_ladder`) compares
        the uniform against the link's loss probability itself so the
        same uniforms can be replayed from a recorded trace.
        """
        if self._loss_prob[link] <= 0.0:
            return None
        return self._loss[link].random()

    def delay_uniform(self, link: str) -> float | None:
        """Raw uniform behind one delay draw, or ``None`` when delay is off."""
        if self.plan.delay_rate <= 0.0:
            return None
        return self._delay[link].random()

    def jitter_uniform(self, link: str) -> float:
        """One uniform from the per-link jitter substream.

        The stream is created lazily: the default exponential ladder
        never jitters, so pre-policy builds (which never instantiated
        these streams) keep byte-identical RNG state.
        """
        rng = self._jitter.get(link)
        if rng is None:
            rng = random.Random(fault_seed(self.plan.seed, self._scope, "jitter", link))
            self._jitter[link] = rng
        return rng.random()

    def link_ok(self, link: str) -> bool:
        """One Bernoulli draw: did the message over ``link`` get through?"""
        u = self.loss_uniform(link)
        return u is None or u >= self._loss_prob[link]

    def delay_penalty(self, link: str) -> float:
        """Extra RTT multiples a successful round costs (0.0 = on time)."""
        u = self.delay_uniform(link)
        if u is not None and u < self.plan.delay_rate:
            return self.plan.delay_factor - 1.0
        return 0.0

    def unresponsive(self, cluster: int, client: int) -> bool:
        """Is this client cache permanently unreachable for pushes?

        Hash-based rather than drawn, so the answer is stable for the
        whole run and independent of call order — a firewalled machine
        stays firewalled.
        """
        fraction = self.plan.unresponsive_fraction
        if fraction <= 0.0:
            return False
        draw = fault_seed(self.plan.seed, self._scope, "unresponsive", cluster, client)
        return draw < fraction * float(1 << 63)

    def stream(self, *parts: Any) -> random.Random:
        """A fresh named substream (e.g. per-cluster eviction-notice loss)."""
        return random.Random(fault_seed(self.plan.seed, self._scope, *parts))
