"""The fault model: a frozen, seeded description of what goes wrong.

A :class:`FaultPlan` composes the pluggable fault processes the
cooperative-caching literature identifies as the weak points of
directory-based designs (stale directories, unresponsive peers, message
loss) with the churn the paper hand-waves as "Pastry is fault-resilient"
(§4.1, §6):

* **message loss** — per-link Bernoulli drop on the three cooperation
  links (:data:`~repro.netmodel.FAULT_LINKS`): the directory redirect
  into the own P2P cache, the cooperating-proxy fetch, and the push
  protocol.  A lost message costs the sender a full timeout (one link
  RTT, inflated by exponential backoff on retries) before it retries or
  falls back — the same accounting discipline as the Bloom-false-positive
  charge.
* **message delay** — Bernoulli latency inflation: with probability
  ``delay_rate`` a successful round takes ``delay_factor`` RTTs instead
  of one (congestion, slow peer), charged as extra latency.
* **unresponsive clients** — a deterministic ``unresponsive_fraction`` of
  client caches never answer push requests (NAT/firewall beyond the push
  protocol's reach, hung machines); a push aimed at one burns the full
  timeout ladder and fails.
* **stale directory entries** — eviction notices from clients to the
  proxy's lookup directory are dropped with probability ``stale_rate``,
  so entries linger past the object's death *beyond* Bloom false
  positives (this bites exact directories too).  The next lookup that
  chases a stale entry pays the wasted round and repairs it.
* **churn** — a Poisson process of membership events (crashes and joins)
  at ``churn_rate`` expected events per request, generalising the
  hand-written :class:`~repro.core.churn.ChurnEvent` lists.

All randomness derives from ``seed`` through named SHA-256 substreams
(:mod:`repro.faults.injector`), so a plan replays identically across
processes and runs — the determinism the equivalence suite asserts.

The *response* to these faults — the timeout → retry → fallback ladder —
rides alongside the probabilities as an optional
:class:`~repro.protocol.policy.PolicySet` (``policies``), so fault
processes and retry policy are independently swappable; ``None`` means
every link runs the default exponential ladder, byte-identical to the
pre-policy builds.

This module must not import from :mod:`repro.experiments` (the
experiment layer imports *us*).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..protocol.policy import DEFAULT_POLICIES, PolicySet

__all__ = ["FaultPlan", "NO_FAULTS"]


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, picklable fault configuration for one simulation."""

    #: Per-link Bernoulli message-loss probabilities.
    p2p_loss: float = 0.0
    proxy_loss: float = 0.0
    push_loss: float = 0.0
    #: P(successful round is slow) and its latency multiplier.
    delay_rate: float = 0.0
    delay_factor: float = 2.0
    #: P(an eviction notice to the lookup directory is dropped).
    stale_rate: float = 0.0
    #: Fraction of client caches that never answer push requests.
    unresponsive_fraction: float = 0.0
    #: Expected Poisson membership events (fail/join) per request.
    churn_rate: float = 0.0
    #: Retry budget after the first timeout, and the backoff multiplier
    #: applied to the timeout on each successive retry.
    max_retries: int = 2
    backoff_base: float = 2.0
    #: Root seed of every fault substream (independent of the trace seed).
    seed: int = 0
    #: Per-link retry policies (``None``: the default exponential ladder
    #: on every link).  A plain dict — e.g. a JSON round-trip through a
    #: trace header or a wire hello — is coerced back to a
    #: :class:`~repro.protocol.policy.PolicySet`, whose constructor
    #: validates per-link names against the known fault links.
    policies: PolicySet | None = None

    _RATES = (
        "p2p_loss",
        "proxy_loss",
        "push_loss",
        "delay_rate",
        "stale_rate",
        "unresponsive_fraction",
        "churn_rate",
    )

    def __post_init__(self) -> None:
        for name in self._RATES:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_factor < 1.0:
            raise ValueError("delay_factor must be >= 1 (a delay cannot speed up)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 1.0:
            raise ValueError("backoff_base must be >= 1")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.policies is not None and not isinstance(self.policies, PolicySet):
            if not isinstance(self.policies, dict):
                raise TypeError(
                    "policies must be a PolicySet, a mapping, or None; "
                    f"got {self.policies!r}"
                )
            object.__setattr__(self, "policies", PolicySet(**self.policies))

    def policy_set(self) -> PolicySet:
        """The effective per-link policies (the identity set when unset)."""
        return self.policies if self.policies is not None else DEFAULT_POLICIES

    def policy_for(self, link: str):
        """The :class:`~repro.protocol.policy.RetryPolicy` for ``link``."""
        return self.policy_set().for_link(link)

    def is_zero(self) -> bool:
        """True when no fault process is active — the plan is a no-op.

        Zero plans dispatch to the plain, fault-free code path so results
        stay byte-identical to a run without the faults subsystem.
        """
        return all(getattr(self, name) == 0.0 for name in self._RATES)

    @property
    def label(self) -> str:
        """Compact tag for progress lines, e.g. ``loss=0.1,stale=0.05``."""
        parts: list[str] = []
        if self.p2p_loss == self.proxy_loss == self.push_loss:
            if self.p2p_loss:
                parts.append(f"loss={self.p2p_loss:g}")
        else:
            for name, tag in (("p2p_loss", "p2p"), ("proxy_loss", "proxy"),
                              ("push_loss", "push")):
                if getattr(self, name):
                    parts.append(f"{tag}={getattr(self, name):g}")
        if self.delay_rate:
            parts.append(f"delay={self.delay_rate:g}x{self.delay_factor:g}")
        if self.stale_rate:
            parts.append(f"stale={self.stale_rate:g}")
        if self.unresponsive_fraction:
            parts.append(f"unresp={self.unresponsive_fraction:g}")
        if self.churn_rate:
            parts.append(f"churn={self.churn_rate:g}")
        if self.policies is not None and not self.policies.is_default:
            parts.append(f"policy={self.policies.label}")
        return ",".join(parts) if parts else "none"

    def describe(self) -> str:
        """One human-readable line listing every non-default field."""
        changed = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self)
            if getattr(self, f.name) != f.default
        ]
        return f"FaultPlan({', '.join(changed)})" if changed else "FaultPlan(no faults)"


#: The identity plan: every fault process off, default protocol knobs.
NO_FAULTS = FaultPlan()
