"""Fault injection: deterministic failures for the cooperation protocols.

The paper assumes Pastry is "fault-resilient and self-organizing" and
never charges a failure; this package makes failure a first-class,
seeded experiment input:

- :mod:`repro.faults.plan` — :class:`FaultPlan`: message loss/delay per
  cooperation link, stale directory entries, unresponsive push targets,
  Poisson churn; ``NO_FAULTS`` is the identity.
- :mod:`repro.faults.injector` — named SHA-256 substreams so every
  fault draw replays identically from the plan seed.
- :mod:`repro.faults.poisson` — churn-event generation from a rate,
  subsuming hand-written :class:`~repro.core.churn.ChurnEvent` lists.
- :mod:`repro.faults.run` — :func:`run_scheme_with_faults`, the
  dispatching entry point (zero plans take the plain code path).

The failure *semantics* — timeout → bounded retry (exponential backoff)
→ fallback-to-origin, every wasted round charged to latency — live in
:class:`repro.protocol.transport.FaultTransport`: a faulty run is the
same scheme carrying a fault transport, not a subclass fork.

Layering: this package imports :mod:`repro.core` / :mod:`repro.protocol`
/ :mod:`repro.netmodel` only — never :mod:`repro.experiments`, which
builds on top of it.
"""

from .injector import FaultInjector, fault_seed
from .plan import NO_FAULTS, FaultPlan
from .poisson import poisson_churn_events
from .run import FAULTY_SCHEMES, run_scheme_with_faults

__all__ = [
    "FAULTY_SCHEMES",
    "NO_FAULTS",
    "FaultInjector",
    "FaultPlan",
    "fault_seed",
    "poisson_churn_events",
    "run_scheme_with_faults",
]
