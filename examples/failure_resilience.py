#!/usr/bin/env python
"""Fault resilience: what happens when client machines crash mid-run.

The paper claims the Pastry-based P2P client cache is "fault-resilient
and self-organizing" (§4.1) but never quantifies it.  This example
injects client failures (and a recovery join) into a Hier-GD run and
reports the cost: objects lost, stale directory entries lazily repaired,
and how much mean latency degrades relative to a churn-free run.

Usage::

    python examples/failure_resilience.py
"""

from repro.core.churn import ChurnEvent, HierGdChurnScheme
from repro.core.config import SimulationConfig
from repro.core.hiergd import HierGdScheme
from repro.core.run import generate_workloads
from repro.workload import ProWGenConfig


def main() -> None:
    config = SimulationConfig(
        workload=ProWGenConfig(n_requests=40_000, n_objects=2_000, n_clients=40),
        n_proxies=1,
        proxy_cache_fraction=0.1,  # small proxy: the P2P tier carries weight
        client_cache_fraction=0.0025,  # 40 clients x 0.25% => 10% P2P
    )
    traces = generate_workloads(config, seed=17)

    baseline = HierGdScheme(config, traces).run()

    # A quarter of the machines crash across the middle of the run; one
    # replacement machine joins near the end.
    events = [
        ChurnEvent(at_request=10_000 + 2_000 * i, kind="fail", cluster=0, client=i)
        for i in range(10)
    ] + [ChurnEvent(at_request=34_000, kind="join", cluster=0)]
    churned = HierGdChurnScheme(config, traces, events).run()

    print("churn schedule: 10 failures (25% of machines) + 1 join\n")
    print(f"{'':24s} {'no churn':>12} {'with churn':>12}")
    print(f"{'mean latency':24s} {baseline.mean_latency:>12.4f} {churned.mean_latency:>12.4f}")
    print(f"{'P2P hit rate':24s} {baseline.hit_rate('local_p2p'):>12.2%} "
          f"{churned.hit_rate('local_p2p'):>12.2%}")
    print(f"{'server miss rate':24s} {baseline.miss_rate:>12.2%} {churned.miss_rate:>12.2%}")
    print()
    print("churn accounting:")
    for key in ("client_failures", "client_joins", "objects_lost",
                "directory_repairs", "directory_false_positives"):
        print(f"  {key:28s} {churned.messages[key]}")
    degradation = churned.mean_latency / baseline.mean_latency - 1
    print(f"\nlatency degradation under churn: {degradation:+.2%}")
    print("The directory self-heals: every stale entry costs one wasted")
    print("Tp2p round, then disappears — no lasting damage beyond the")
    print("lost cache contents themselves.")


if __name__ == "__main__":
    main()
