#!/usr/bin/env python
"""Quickstart: simulate cooperative proxy caching with and without client caches.

Runs the NC baseline, classical cooperation (SC), and the paper's
Hier-GD (P2P client caches over Pastry) on one synthetic workload and
prints mean access latencies and latency gains.

Usage::

    python examples/quickstart.py
"""

from repro import SimulationConfig, latency_gain, run_scheme
from repro.core.run import generate_workloads
from repro.workload import ProWGenConfig


def main() -> None:
    # A small workload so the example runs in seconds: 2 cooperating
    # proxies, 50 clients each, 30k requests over 1.5k objects per
    # cluster (the library defaults mirror the paper's full scale).
    config = SimulationConfig(
        workload=ProWGenConfig(n_requests=30_000, n_objects=1_500, n_clients=50),
        proxy_cache_fraction=0.2,  # proxy cache: 20% of the infinite size
        client_cache_fraction=0.002,  # 50 clients x 0.2% => 10% P2P cache
    )
    print(f"configuration: {config.describe()}\n")

    # Clusters are statistically identical (same popularity, independent
    # orderings) — generate once, share across schemes.
    traces = generate_workloads(config, seed=42)
    ics = traces[0].infinite_cache_size
    print(f"infinite cache size: {ics} objects "
          f"(proxy cache {config.sizing_for(traces[0]).proxy_size}, "
          f"P2P client cache {config.sizing_for(traces[0]).p2p_size})\n")

    baseline = run_scheme("nc", config, traces)
    print(baseline.summary())
    for name in ("sc", "hier-gd"):
        result = run_scheme(name, config, traces)
        gain = 100 * latency_gain(result, baseline)
        print(f"{result.summary()}  -> latency gain {gain:.1f}%")

    hier = run_scheme("hier-gd", config, traces)
    print("\nHier-GD protocol accounting:")
    for key, value in sorted(hier.messages.items()):
        print(f"  {key:32s} {value}")
    print(f"  mean Pastry hops: {hier.extras.get('mean_pastry_hops', 0):.2f}")


if __name__ == "__main__":
    main()
