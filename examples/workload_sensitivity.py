#!/usr/bin/env python
"""How workload characteristics change the value of cooperation.

A miniature of the paper's Figures 3 and 4: sweep the Zipf skew (α) and
the temporal-locality stack size, and watch how the latency gain of
Hier-GD (and the FC-EC upper bound) over NC responds.

Expected directions (paper §5.2):

* smaller α → bigger gains (less skew = larger working set = more for
  cooperating caches to add);
* larger LRU stack → smaller gains for Hier-GD/FC-EC (temporal locality
  helps a single cache more than it helps cooperation).

Usage::

    python examples/workload_sensitivity.py
"""

from repro.core.config import SimulationConfig
from repro.core.metrics import latency_gain
from repro.core.run import generate_workloads, run_scheme
from repro.workload import ProWGenConfig


def gains_for(workload: ProWGenConfig, seed: int = 3) -> dict[str, float]:
    config = SimulationConfig(
        workload=workload,
        proxy_cache_fraction=0.2,
        client_cache_fraction=0.002,
    )
    traces = generate_workloads(config, seed=seed)
    nc = run_scheme("nc", config, traces)
    return {
        name: 100 * latency_gain(run_scheme(name, config, traces), nc)
        for name in ("fc-ec", "hier-gd")
    }


def main() -> None:
    base = dict(n_requests=30_000, n_objects=1_500, n_clients=50)

    print("Zipf skew sweep (proxy cache fixed at 20% of ICS)")
    print(f"{'alpha':>8} {'fc-ec':>10} {'hier-gd':>10}")
    for alpha in (0.5, 0.7, 1.0):
        g = gains_for(ProWGenConfig(alpha=alpha, **base))
        print(f"{alpha:>8.1f} {g['fc-ec']:>9.1f}% {g['hier-gd']:>9.1f}%")

    print("\nTemporal locality sweep (LRU stack as % of re-referenced objects)")
    print(f"{'stack':>8} {'fc-ec':>10} {'hier-gd':>10}")
    for stack in (0.05, 0.20, 0.60):
        g = gains_for(ProWGenConfig(stack_fraction=stack, **base))
        print(f"{stack:>8.0%} {g['fc-ec']:>9.1f}% {g['hier-gd']:>9.1f}%")

    print("\n(Each gain is relative to the NC baseline on the same trace.)")


if __name__ == "__main__":
    main()
