#!/usr/bin/env python
"""Replaying a real proxy log through the caching schemes.

The paper's Figure 2(b) uses the UCB Home-IP trace; any Squid
``access.log`` (or Common Log Format file) can play the same role via
:mod:`repro.workload.adapters`.  This example synthesises a small Squid
log (stand-in for your own ``/var/log/squid/access.log``), parses it,
reports what the adapter kept, and compares NC / SC / Hier-GD on the
replayed requests.

Usage::

    python examples/real_log_replay.py [path/to/access.log]
"""

import sys

import numpy as np

from repro.core.config import SimulationConfig
from repro.core.metrics import latency_gain
from repro.core.run import run_scheme
from repro.workload import ProWGenConfig, from_squid_log
from repro.workload.zipf import AliasSampler, zipf_weights


def synthesise_squid_log(n_lines: int = 20_000, seed: int = 5) -> str:
    """A plausible Squid access.log for demonstration purposes."""
    rng = np.random.default_rng(seed)
    urls = AliasSampler(zipf_weights(800, 0.8))
    lines = []
    ts = 1157689324.0
    for _ in range(n_lines):
        ts += float(rng.exponential(0.4))
        client = f"10.0.{rng.integers(4)}.{rng.integers(40)}"
        url = f"http://site{urls.sample(rng) % 40}.example/page{urls.sample(rng)}.html"
        status = 200 if rng.random() < 0.96 else 404
        method = "GET" if rng.random() < 0.95 else "POST"
        size = int(rng.lognormal(9, 1))
        lines.append(
            f"{ts:.3f}   {rng.integers(20, 900)} {client} TCP_MISS/{status} "
            f"{size} {method} {url} - DIRECT/192.0.2.1 text/html"
        )
    return "\n".join(lines)


def main() -> None:
    if len(sys.argv) > 1:
        source = sys.argv[1]
        print(f"parsing {source} ...")
    else:
        source = synthesise_squid_log()
        print("no log supplied - synthesising a 20k-line Squid access.log")

    trace, report = from_squid_log(source, n_clients=64)
    print(f"adapter report: {report.total_lines} lines, {report.kept} kept "
          f"({report.dropped_method} non-GET, {report.dropped_status} errors, "
          f"{report.dropped_query} queries, {report.malformed} malformed)")
    print(f"trace: {len(trace)} requests, {trace.distinct_objects} objects, "
          f"{trace.one_timer_fraction:.0%} one-timers, "
          f"infinite cache size {trace.infinite_cache_size}\n")

    # Replay the same log at both cooperating proxies ("two branch
    # offices with similar browsing"): good enough for a demo.
    config = SimulationConfig(
        workload=ProWGenConfig(
            n_requests=max(2, len(trace)),
            n_objects=trace.n_objects,
            n_clients=trace.n_clients,
        ),
        proxy_cache_fraction=0.25,
        client_cache_fraction=0.0016,  # 64 clients -> ~10% P2P tier
    )
    traces = [trace, trace]
    nc = run_scheme("nc", config, traces)
    print(nc.summary())
    for name in ("sc", "hier-gd"):
        res = run_scheme(name, config, traces)
        print(f"{res.summary()}  -> gain {100 * latency_gain(res, nc):.1f}%")


if __name__ == "__main__":
    main()
