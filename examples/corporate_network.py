#!/usr/bin/env python
"""Scenario: two corporate networks federating their browser caches.

The paper's motivating deployment (§1): each organisation runs a proxy
at its network boundary; the browser caches of all employee machines
form a P2P client cache behind it; the two proxies cooperate.  This
example walks through what the mechanism actually does:

* how the Pastry overlay places objects on client caches,
* how proxy evictions destage (piggybacked) into the P2P tier and what
  object diversion does when a destination cache is full,
* what the lookup directory costs in memory (exact vs Bloom),
* how requests of one organisation get served from the *other*
  organisation's client caches through the push protocol.

Usage::

    python examples/corporate_network.py
"""

from repro.core.config import SimulationConfig
from repro.core.hiergd import HierGdScheme
from repro.core.run import generate_workloads
from repro.netmodel import ALL_TIERS
from repro.workload import ProWGenConfig


def run(directory: str) -> None:
    config = SimulationConfig(
        workload=ProWGenConfig(n_requests=40_000, n_objects=2_000, n_clients=80),
        n_proxies=2,
        proxy_cache_fraction=0.15,  # modest proxies: the P2P tier matters
        client_cache_fraction=0.00125,  # 80 clients x 0.125% => 10% P2P
        directory=directory,
        bloom_fp_rate=0.01,
    )
    traces = generate_workloads(config, seed=7)
    scheme = HierGdScheme(config, traces)
    result = scheme.run()

    print(f"--- directory = {directory} ---")
    print(f"mean access latency: {result.mean_latency:.3f} (Tl units)")
    for tier in ALL_TIERS:
        if tier in result.tier_counts:
            print(f"  served from {tier:12s}: {result.hit_rate(tier):6.2%}")
    print("protocol messages:")
    for key in ("passdowns", "piggybacked_destages", "diversions",
                "store_receipts", "client_evictions", "push_requests",
                "directory_false_positives"):
        print(f"  {key:28s} {result.messages[key]}")
    print(f"directory memory: {result.extras['directory_bytes']:.0f} bytes "
          f"({result.extras['p2p_objects']:.0f} objects in the P2P tier)")
    if "mean_pastry_hops" in result.extras:
        print(f"mean Pastry hops per sampled route: "
              f"{result.extras['mean_pastry_hops']:.2f}")
    print()


def main() -> None:
    print(__doc__.split("Usage::")[0])
    # The same workload under both directory representations shows the
    # paper's §4.2 tradeoff: the Bloom filter shrinks the directory by an
    # order of magnitude at the price of a few wasted P2P redirects.
    run("exact")
    run("bloom")


if __name__ == "__main__":
    main()
