#!/usr/bin/env python
"""Live cluster: a proxy + N client daemons in-process, driven over TCP.

Boots a :class:`~repro.daemon.LocalCluster` (real asyncio socket
servers on localhost — the same daemons ``repro-experiments serve``
runs in the foreground), drives a faulty Hier-GD workload against it
with :func:`~repro.daemon.drive_scheme`, verifies the live result
matches the pure simulation byte for byte, and prints each daemon's
per-link wire traffic from its observability transport.

Usage::

    python examples/live_cluster.py [n_clients]
"""

import dataclasses
import sys

from repro.daemon import LocalCluster, drive_scheme
from repro.experiments.robustness import ROBUSTNESS_FRACTION, robustness_plan
from repro.experiments.runner import SCALES, base_config
from repro.faults.run import run_scheme_with_faults

SCHEME = "hier-gd"
RATE = 0.1


def main() -> None:
    n_clients = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    # Smoke scale keeps the example in seconds: every faulty exchange is
    # a real TCP round-trip to a daemon.
    config = base_config(SCALES["smoke"], proxy_cache_fraction=ROBUSTNESS_FRACTION)
    plan = robustness_plan(RATE, seed=0)

    with LocalCluster(n_clients=n_clients) as cluster:
        routes = cluster.routes
        print(f"cluster up: 1 proxy + {n_clients} client daemons")
        for role, addrs in sorted(routes.items()):
            for host, port in addrs:
                print(f"  {role:7s} {host}:{port}")

        report = drive_scheme(SCHEME, config, routes=routes, plan=plan, seed=0)
        print(
            f"\ndrove {report.scheme} at fault rate {RATE}: "
            f"{report.n_requests} requests, {report.exchanges} wire "
            f"exchanges, {report.probes} probes across {n_clients} client daemons"
        )
        print(f"  {report.result.summary()}")

        # The wire protocol's determinism rules (docs/PROTOCOL.md §8)
        # make a live run reproduce the simulation draw for draw when
        # each fault link lives whole on one connection — i.e. one
        # daemon per role.  (With N>1 client daemons the p2p substream
        # is sharded round-robin, so the runs legitimately differ.)
        solo = {"proxy": routes["proxy"], "client": routes["client"][:1]}
        live = drive_scheme(SCHEME, config, routes=solo, plan=plan, seed=0)
        simulated = run_scheme_with_faults(SCHEME, config, plan=plan, seed=0)
        identical = dataclasses.asdict(live.result) == dataclasses.asdict(simulated)
        verdict = "byte-identical" if identical else "DIVERGED"
        print(f"\nsolo-daemon live run vs pure simulation: {verdict}")

        print("\nper-daemon wire traffic (observability transport):")
        for stats in cluster.stats():
            who = f"{stats['role']} #{stats['node']}"
            print(f"  {who}: {stats['connections']} connections, "
                  f"max {stats['max_in_flight']} ladders in flight, "
                  f"{stats['latency_charged']:.1f} ms simulated latency charged")
            for link, slot in sorted(stats.get("links", {}).items()):
                if slot["attempts"]:
                    print(f"    link {link:6s} attempts={slot['attempts']:6d} "
                          f"ok={slot['ok']:6d} failed={slot['failed']:6d}")
            for kind, slot in sorted(stats.get("exchanges", {}).items()):
                if slot["attempts"]:
                    print(f"    {kind:16s} attempts={slot['attempts']:6d} "
                          f"ok={slot['ok']:6d} failed={slot['failed']:6d}")


if __name__ == "__main__":
    main()
