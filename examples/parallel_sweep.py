#!/usr/bin/env python
"""Parallel figure sweeps with a resumable result store.

Demonstrates the experiment engine end to end:

1. run a figure-2(a)-style sweep fanned out over worker processes, with
   live progress and instrumentation;
2. "kill" a suite mid-run (simulated by only sweeping a prefix of the
   cache-size axis) and resume it — completed points are answered from
   the JSON-lines result store, only the remainder is simulated;
3. show that serial, parallel, and resumed runs all produce the exact
   same curves (the engine's core guarantee: every sweep point carries
   an explicit seed, so its result never depends on where it ran).

Usage::

    python examples/parallel_sweep.py [workers]

with ``workers`` defaulting to all CPU cores.
"""

import os
import sys
import tempfile
from pathlib import Path

from repro.experiments import (
    ExperimentEngine,
    ResultStore,
    RunInstrumentation,
    base_config,
    cache_size_sweep,
)
from repro.experiments.instrument import print_progress
from repro.workload import ProWGenConfig

SCHEMES = ("sc", "fc-ec", "hier-gd")
FRACTIONS = (0.1, 0.25, 0.5, 0.75, 1.0)


def make_engine(workers: int, store_path: Path) -> ExperimentEngine:
    """One engine per run: fresh instrumentation, shared store."""
    return ExperimentEngine(
        workers=workers,
        store=ResultStore(store_path),
        instrument=RunInstrumentation(progress=print_progress),
    )


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else (os.cpu_count() or 1)
    config = base_config(
        workload=ProWGenConfig(n_requests=20_000, n_objects=1_000, n_clients=50)
    )
    store_path = Path(tempfile.mkdtemp(prefix="repro-sweep-")) / "store.jsonl"
    print(f"config: {config.describe()}")
    print(f"store:  {store_path}\n")

    # -- 1. an "interrupted" suite: only the first two fractions finish ----
    print(f"interrupted run ({workers} workers, first 2 of "
          f"{len(FRACTIONS)} fractions):")
    partial = make_engine(workers, store_path)
    cache_size_sweep(
        config, schemes=SCHEMES, fractions=FRACTIONS[:2], seed=7, engine=partial
    )
    inst = partial.instrument
    print(f"-> {inst.executed} points simulated in {inst.elapsed:.1f}s "
          f"({inst.requests_per_sec():,.0f} req/s, "
          f"{inst.worker_utilization(workers):.0%} worker utilization)\n")

    # -- 2. resume: the stored prefix is skipped, the rest is computed -----
    print("resumed run (same store, full fraction axis):")
    resumed = make_engine(workers, store_path)
    sweep = cache_size_sweep(
        config, schemes=SCHEMES, fractions=FRACTIONS, seed=7, engine=resumed
    )
    inst = resumed.instrument
    print(f"-> {inst.skipped} points from store, {inst.executed} newly "
          f"simulated, {inst.retries} retries\n")

    # -- 3. the resumed curves match a from-scratch serial run exactly -----
    serial = cache_size_sweep(
        config, schemes=SCHEMES, fractions=FRACTIONS, seed=7,
        engine=ExperimentEngine(workers=1),
    )
    assert sweep.to_csv() == serial.to_csv(), "engine determinism violated"
    print("resumed parallel run == fresh serial run (byte-identical CSV)\n")
    print(sweep.to_table())


if __name__ == "__main__":
    main()
