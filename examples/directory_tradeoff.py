#!/usr/bin/env python
"""The lookup-directory tradeoff: exact hashtable vs Bloom filter (§4.2).

The proxy must know which objects its P2P client cache holds.  An exact
directory of 128-bit objectIds costs 16 bytes per cached object and is
always right; a (counting, 4-bit, Summary-Cache-style) Bloom filter is
several times smaller but occasionally claims an object is present when
it is not — and every false positive sends the proxy on a wasted LAN
round into the overlay.

This example sweeps the Bloom filter's design false-positive rate and
reports memory, observed false positives, and the end-to-end latency
penalty, next to the exact directory.

Usage::

    python examples/directory_tradeoff.py
"""

from repro.core.config import SimulationConfig
from repro.core.hiergd import HierGdScheme
from repro.core.run import generate_workloads
from repro.workload import ProWGenConfig


def main() -> None:
    workload = ProWGenConfig(n_requests=40_000, n_objects=2_000, n_clients=60)
    base = SimulationConfig(
        workload=workload,
        proxy_cache_fraction=0.15,
        client_cache_fraction=0.0017,  # ~10% P2P tier
    )
    traces = generate_workloads(base, seed=21)

    rows = []
    exact = HierGdScheme(base, traces).run()
    rows.append(("exact", exact))
    for fp in (0.001, 0.01, 0.1, 0.3):
        config = base.with_changes(directory="bloom", bloom_fp_rate=fp)
        rows.append((f"bloom fp={fp:g}", HierGdScheme(config, traces).run()))

    print(f"{'directory':>14} {'memory (B)':>12} {'false pos.':>12} "
          f"{'wasted lat.':>12} {'mean lat.':>10}")
    for label, result in rows:
        print(
            f"{label:>14} {result.extras['directory_bytes']:>12.0f} "
            f"{result.messages['directory_false_positives']:>12d} "
            f"{result.extras['extra_latency']:>12.1f} "
            f"{result.mean_latency:>10.4f}"
        )
    print(
        "\nMemory shrinks with the allowed false-positive rate; latency\n"
        "degrades only marginally because a wasted redirect costs Tp2p,\n"
        "which is tiny next to a server fetch — the paper's argument for\n"
        "Bloom directories."
    )


if __name__ == "__main__":
    main()
