"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package, so the
PEP-517 editable path (which needs ``bdist_wheel``) is unavailable offline.
This shim lets ``pip install -e . --no-build-isolation --no-use-pep517``
work; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
